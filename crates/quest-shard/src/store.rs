//! The sharded store: N FK-less shard databases behind one full catalog.
//!
//! ## Merge laws (what makes sharded ≡ unsharded, bit for bit)
//!
//! * **Integer domain first.** Everything that crosses a shard boundary is
//!   an integer: document counts, total token lengths, per-token document
//!   frequencies, max term frequencies, row/null/distinct counts, join
//!   pair counts. Integer sums and maxes are exactly associative, so the
//!   merge order cannot perturb them.
//! * **One float evaluation.** Every floating-point expression (idf, tf
//!   saturation, normalization, NMI entropy) is evaluated **once**, from
//!   the merged integers, through the *same* code path the unsharded
//!   database uses — never "merged" in the float domain.
//! * **Phrase scatter under injected idfs.** Multi-token scoring needs
//!   per-row conjunctive sums. A row's postings live wholly on its shard,
//!   so each shard reruns the conjunctive accumulation under the *merged*
//!   idfs and the gather step takes the max — the only cross-shard float
//!   operation, and max is exact.
//! * **Global checks, local storage.** Shard catalogs carry no foreign
//!   keys; the store performs every referential-integrity check globally
//!   (routing each probe by PK hash) *before* any shard mutates, and
//!   reproduces the unsharded database's check order and error strings.
//!   Records a shard is asked to apply therefore never fail locally, which
//!   is what keeps per-shard WAL replay deterministic.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use quest_serve::ApplyReport;
use quest_wal::ChangeRecord;
use relstore::index::{KeywordProbe, ScoreAccumulator};
use relstore::sql::{ResultSet, SelectStatement};
use relstore::stats::{AttributeStats, AttributeStatsAccumulator, JoinStats, JoinStatsAccumulator};
use relstore::{
    AttrId, Catalog, Database, ForeignKey, Row, RowId, StoreError, TableData, TableId, Value,
};

use crate::config::ShardConfig;
use crate::error::ShardError;
use crate::partition::Partitioner;

/// Render a PK tuple for error messages, exactly like the unsharded store.
fn fmt_key(key: &[Value]) -> String {
    Row::new(key.to_vec()).to_string()
}

/// Run `f(0..n)` either serially or chunked across scoped threads,
/// returning results in index order regardless.
fn map_range<T, F>(n: usize, parallel: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = if parallel {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n)
    } else {
        1
    };
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Publish one scatter's per-shard walls: the labeled latency histograms,
/// the thread-local handoff that feeds the serving layer's query trace, and
/// the fan-out imbalance gauge (busiest shard's overrun of the mean, whole
/// percent).
fn record_scatter(sums: &[u64]) {
    let registry = quest_obs::global();
    for (s, &ns) in sums.iter().enumerate() {
        registry
            .histogram_with(crate::names::SCATTER, &[("shard", &s.to_string())])
            .record(ns);
        quest_obs::scatter::record(s, ns / 1_000);
    }
    let total: u64 = sums.iter().sum();
    let mean = total / sums.len().max(1) as u64;
    let max = sums.iter().copied().max().unwrap_or(0);
    // A zero mean means the scatter was too fast to resolve: leave the
    // gauge alone rather than publish a meaningless 0-vs-0 comparison.
    if let Some(pct) = ((max - mean) * 100).checked_div(mean) {
        registry
            .gauge(crate::names::FANOUT_IMBALANCE)
            .set(i64::try_from(pct).unwrap_or(i64::MAX));
    }
}

/// Count one scatter's read amplification: probes issued (every
/// `(attribute, shard)` pair the fan-out touched) versus results the
/// gather used (attribute slots whose merged score came back nonzero —
/// a zero slot contributes nothing to emission downstream).
fn record_scatter_amplification(probes: usize, scores: &[f64]) {
    let registry = quest_obs::global();
    static DESCRIBE: std::sync::Once = std::sync::Once::new();
    DESCRIBE.call_once(|| {
        registry.describe(
            crate::names::SCATTER_PROBES,
            "Per-shard probes issued by keyword scatters (attributes x shards).",
        );
        registry.describe(
            crate::names::SCATTER_USED,
            "Scatter results the gather used (nonzero merged attribute scores).",
        );
    });
    registry
        .counter(crate::names::SCATTER_PROBES)
        .add(probes as u64);
    let used = scores.iter().filter(|s| **s != 0.0).count();
    registry
        .counter(crate::names::SCATTER_USED)
        .add(used as u64);
}

/// A hash-partitioned database: one full catalog, N FK-less shards, merged
/// statistics that are bit-identical to the unsharded computation.
#[derive(Debug)]
pub struct ShardedStore {
    /// The *full* catalog, foreign keys included — the schema queries and
    /// global integrity checks see.
    catalog: Catalog,
    partitioner: Partitioner,
    parallel: bool,
    /// One database per shard, each over `catalog.without_foreign_keys()`.
    shards: Vec<Database>,
    /// Merged attribute statistics (bit-identical to the unsharded store).
    attr_stats: HashMap<AttrId, AttributeStats>,
    /// Merged join statistics (bit-identical NMI).
    join_stats: HashMap<ForeignKey, JoinStats>,
    /// When `Some`, statistics refresh is deferred: mutations record their
    /// table here and the batch end recomputes each dirty table once.
    stats_dirty: Option<BTreeSet<TableId>>,
    /// Gathered scratch databases for join execution, keyed by the sorted
    /// FROM-table set; invalidated by every mutation. Interior-mutable so
    /// read paths (`execute`, `has_results`) can fill it.
    scratch: Mutex<HashMap<Vec<TableId>, Arc<Database>>>,
}

impl ShardedStore {
    /// An empty sharded store over `catalog`.
    pub fn new(catalog: Catalog, config: &ShardConfig) -> Result<ShardedStore, ShardError> {
        let mut store = ShardedStore::empty(catalog, config)?;
        store.finalize_shards();
        store.rebuild_all_stats();
        Ok(store)
    }

    /// Shard an existing database: every row is routed by the hash of its
    /// primary key, shard indexes are built per shard (in parallel when
    /// configured), and the merged statistics are computed once.
    pub fn from_database(db: &Database, config: &ShardConfig) -> Result<ShardedStore, ShardError> {
        let mut store = ShardedStore::empty(db.catalog().clone(), config)?;
        for schema in db.catalog().tables() {
            for (_, row) in db.table_data(schema.id).iter() {
                let key = TableData::pk_of(db.catalog(), schema, row);
                let s = store.partitioner.shard_of_key(&key);
                store.shards[s].insert_unchecked(&schema.name, row.clone())?;
            }
        }
        store.finalize_shards();
        store.rebuild_all_stats();
        Ok(store)
    }

    /// Reassemble a sharded store from recovered shard databases (the
    /// reopen path of [`ShardedPrimary`](crate::ShardedPrimary)). Verifies
    /// the shard count, the structural agreement of every shard's catalog
    /// with `catalog` (modulo foreign keys), and — via
    /// [`ShardedStore::validate`] — placement and global referential
    /// integrity.
    pub fn from_shards(
        catalog: Catalog,
        shards: Vec<Database>,
        config: &ShardConfig,
    ) -> Result<ShardedStore, ShardError> {
        config.validate()?;
        if shards.len() != config.shard_count {
            return Err(ShardError::Config(format!(
                "expected {} shard databases, got {}",
                config.shard_count,
                shards.len()
            )));
        }
        for (i, shard) in shards.iter().enumerate() {
            let sc = shard.catalog();
            if sc.table_count() != catalog.table_count()
                || sc.attribute_count() != catalog.attribute_count()
                || !sc.foreign_keys().is_empty()
            {
                return Err(ShardError::Config(format!(
                    "shard {i} catalog does not match the set's catalog \
                     (want {} tables / {} attributes, FK-less; got {} / {} with {} FKs)",
                    catalog.table_count(),
                    catalog.attribute_count(),
                    sc.table_count(),
                    sc.attribute_count(),
                    sc.foreign_keys().len()
                )));
            }
        }
        let mut store = ShardedStore {
            catalog,
            partitioner: Partitioner::new(config)?,
            parallel: config.parallel,
            shards,
            attr_stats: HashMap::new(),
            join_stats: HashMap::new(),
            stats_dirty: None,
            scratch: Mutex::new(HashMap::new()),
        };
        store.finalize_shards();
        store.validate()?;
        store.rebuild_all_stats();
        Ok(store)
    }

    fn empty(catalog: Catalog, config: &ShardConfig) -> Result<ShardedStore, ShardError> {
        let partitioner = Partitioner::new(config)?;
        catalog.validate()?;
        let shard_catalog = catalog.without_foreign_keys();
        let shards = (0..config.shard_count)
            .map(|_| Database::new(shard_catalog.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedStore {
            catalog,
            partitioner,
            parallel: config.parallel,
            shards,
            attr_stats: HashMap::new(),
            join_stats: HashMap::new(),
            stats_dirty: None,
            scratch: Mutex::new(HashMap::new()),
        })
    }

    /// Build (or rebuild) every shard's indexes and local statistics —
    /// one `finalize` per shard, in parallel when configured.
    fn finalize_shards(&mut self) {
        if self.parallel && self.shards.len() > 1 {
            std::thread::scope(|s| {
                for db in self.shards.iter_mut() {
                    if !db.is_finalized() {
                        s.spawn(move || db.finalize());
                    }
                }
            });
        } else {
            for db in self.shards.iter_mut() {
                if !db.is_finalized() {
                    db.finalize();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The full catalog (foreign keys included).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing function.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// One shard's database (FK-less catalog).
    pub fn shard(&self, i: usize) -> &Database {
        &self.shards[i]
    }

    /// All shard databases, in shard order.
    pub fn shards(&self) -> &[Database] {
        &self.shards
    }

    /// Live rows of a table, summed over shards.
    pub fn row_count(&self, table: TableId) -> usize {
        self.shards.iter().map(|s| s.row_count(table)).sum()
    }

    /// Live rows over all tables and shards.
    pub fn total_rows(&self) -> usize {
        self.shards.iter().map(|s| s.total_rows()).sum()
    }

    /// Merged statistics of one attribute.
    pub fn attr_stats(&self, attr: AttrId) -> Option<&AttributeStats> {
        self.attr_stats.get(&attr)
    }

    /// Merged statistics of one foreign key.
    pub fn fk_stats(&self, fk: ForeignKey) -> Option<&JoinStats> {
        self.join_stats.get(&fk)
    }

    // ------------------------------------------------------------------
    // Mutations — same check order, same error strings as `Database`
    // ------------------------------------------------------------------

    /// Insert with full integrity checking. The row is stored on the shard
    /// its primary key hashes to; FK targets are checked globally first.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<RowId, StoreError> {
        let tid = self.catalog.table_id(table)?;
        let schema = self.catalog.table(tid).clone();
        TableData::check_row(&self.catalog, &schema, &row)?;
        self.check_foreign_keys_global(tid, &row)?;
        let key = TableData::pk_of(&self.catalog, &schema, &row);
        let shard = self.partitioner.shard_of_key(&key);
        // The owning shard re-checks shape and PK uniqueness; because equal
        // keys always route to the same shard, shard-local uniqueness *is*
        // global uniqueness, and the error string matches the unsharded one
        // (same schema name, same key rendering).
        let rid = self.shards[shard].insert(table, row)?;
        self.finish_mutation(tid);
        Ok(rid)
    }

    /// Delete by primary key, with the restrictive referential rule
    /// enforced globally (a referencing row on *any* shard blocks it).
    pub fn delete(&mut self, table: &str, key: &[Value]) -> Result<RowId, StoreError> {
        let tid = self.catalog.table_id(table)?;
        let schema = self.catalog.table(tid).clone();
        let shard = self.partitioner.shard_of_key(key);
        let rid = self.shards[shard]
            .table_data(tid)
            .lookup_pk(key)
            .ok_or_else(|| StoreError::RowNotFound(format!("{}{}", schema.name, fmt_key(key))))?;
        self.check_pk_unreferenced_global(tid, shard, rid, None)?;
        let rid = self.shards[shard].delete(table, key)?;
        self.finish_mutation(tid);
        Ok(rid)
    }

    /// Replace the row at `key` with `row`. When the primary key changes
    /// shard, the move is a checked delete + insert (all checks run before
    /// either shard mutates, so a failure leaves both untouched).
    pub fn update(&mut self, table: &str, key: &[Value], row: Row) -> Result<RowId, StoreError> {
        let tid = self.catalog.table_id(table)?;
        let schema = self.catalog.table(tid).clone();
        let shard = self.partitioner.shard_of_key(key);
        let rid = self.shards[shard]
            .table_data(tid)
            .lookup_pk(key)
            .ok_or_else(|| StoreError::RowNotFound(format!("{}{}", schema.name, fmt_key(key))))?;
        TableData::check_row(&self.catalog, &schema, &row)?;
        self.check_foreign_keys_global(tid, &row)?;
        let new_key = TableData::pk_of(&self.catalog, &schema, &row);
        if new_key.as_slice() != key {
            self.check_pk_unreferenced_global(tid, shard, rid, Some(&row))?;
        }
        let new_shard = self.partitioner.shard_of_key(&new_key);
        let rid = if new_shard == shard {
            self.shards[shard].update(table, key, row)?
        } else {
            // Duplicate check on the destination first — same message the
            // in-place path produces — so nothing mutates on failure.
            if self.shards[new_shard]
                .table_data(tid)
                .lookup_pk(&new_key)
                .is_some()
            {
                return Err(StoreError::DuplicateKey(format!(
                    "{}{}",
                    schema.name,
                    Row::new(new_key)
                )));
            }
            self.shards[shard].delete(table, key)?;
            self.shards[new_shard].insert(table, row)?
        };
        self.finish_mutation(tid);
        Ok(rid)
    }

    /// Apply one WAL change record through the checked mutation API.
    pub fn apply_record(&mut self, record: &ChangeRecord) -> Result<RowId, StoreError> {
        match record {
            ChangeRecord::Insert { table, row } => self.insert(table, Row::new(row.clone())),
            ChangeRecord::Delete { table, key } => self.delete(table, key),
            ChangeRecord::Update { table, key, row } => {
                self.update(table, key, Row::new(row.clone()))
            }
        }
    }

    /// Apply a mutation batch with per-record accept/reject semantics and
    /// statistics refresh deferred to the end of the batch — the sharded
    /// twin of the unsharded `MutableSource` path: indexes stay exact per
    /// record, every shard's local statistics and the merged statistics are
    /// recomputed once per dirty table when the batch ends.
    pub fn apply_changes(&mut self, changes: &[ChangeRecord], report: &mut ApplyReport) {
        /// Ends the deferral scopes on exit — including an unwind — so a
        /// panicking record cannot leave refresh permanently disabled.
        struct Scope<'a> {
            store: &'a mut ShardedStore,
            flags: Vec<bool>,
            outermost: bool,
        }
        impl Drop for Scope<'_> {
            fn drop(&mut self) {
                for (shard, flag) in self.store.shards.iter_mut().zip(&self.flags) {
                    shard.end_stats_deferred(*flag);
                }
                if self.outermost {
                    if let Some(dirty) = self.store.stats_dirty.take() {
                        for tid in dirty {
                            self.store.recompute_stats_for(tid);
                        }
                    }
                }
            }
        }
        let flags: Vec<bool> = self
            .shards
            .iter_mut()
            .map(|s| s.begin_stats_deferred())
            .collect();
        let outermost = self.stats_dirty.is_none();
        if outermost {
            self.stats_dirty = Some(BTreeSet::new());
        }
        let scope = Scope {
            store: self,
            flags,
            outermost,
        };
        for (i, change) in changes.iter().enumerate() {
            match scope.store.apply_record(change) {
                Ok(_) => report.applied += 1,
                Err(e) => report.rejected.push((i, e)),
            }
        }
    }

    /// Post-mutation bookkeeping: drop gathered scratch databases (their
    /// rows are stale) and refresh the merged statistics of the table.
    fn finish_mutation(&mut self, tid: TableId) {
        self.scratch.lock().expect("scratch lock poisoned").clear();
        self.recompute_stats_for(tid);
    }

    // ------------------------------------------------------------------
    // Global integrity checks
    // ------------------------------------------------------------------

    /// FK-target existence for every FK column of a candidate row, probing
    /// the shard each target key hashes to. Same error string as the
    /// unsharded check.
    fn check_foreign_keys_global(&self, tid: TableId, row: &Row) -> Result<(), StoreError> {
        for fk in self.catalog.foreign_keys() {
            let from = self.catalog.attribute(fk.from);
            if from.table != tid {
                continue;
            }
            let v = row.get(from.position);
            if v.is_null() {
                continue;
            }
            let target_table = self.catalog.attribute(fk.to).table;
            let owner = self.partitioner.shard_of_key(std::slice::from_ref(v));
            if self.shards[owner]
                .table_data(target_table)
                .lookup_pk(std::slice::from_ref(v))
                .is_none()
            {
                return Err(StoreError::ForeignKeyViolation(format!(
                    "{} = {v} has no target in {}",
                    self.catalog.qualified_name(fk.from),
                    self.catalog.table(target_table).name
                )));
            }
        }
        Ok(())
    }

    /// Restrictive referential check before a delete or PK-changing update
    /// of the row at `(tid, victim_shard, victim_rid)`: no live row on any
    /// shard may reference the victim's current primary key. The victim is
    /// skipped on delete and judged by `replacement` on update, exactly
    /// like the unsharded check.
    fn check_pk_unreferenced_global(
        &self,
        tid: TableId,
        victim_shard: usize,
        victim_rid: RowId,
        replacement: Option<&Row>,
    ) -> Result<(), StoreError> {
        let victim = self.shards[victim_shard].table_data(tid).row(victim_rid);
        for fk in self.catalog.foreign_keys() {
            let to = self.catalog.attribute(fk.to);
            if to.table != tid {
                continue;
            }
            let pk_val = victim.get(to.position);
            let from = self.catalog.attribute(fk.from);
            for (s, shard) in self.shards.iter().enumerate() {
                for (r_rid, r_row) in shard.table_data(from.table).iter() {
                    let row = if s == victim_shard && from.table == tid && r_rid == victim_rid {
                        match replacement {
                            Some(new_row) => new_row,
                            None => continue, // delete: self-reference dies too
                        }
                    } else {
                        r_row
                    };
                    let v = row.get(from.position);
                    if !v.is_null() && v == pk_val {
                        return Err(StoreError::ForeignKeyViolation(format!(
                            "{} = {v} still references {}",
                            self.catalog.qualified_name(fk.from),
                            self.catalog.qualified_name(fk.to)
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Full integrity check of the shard set: every shard's structural
    /// invariants, every row's placement (its PK must hash to the shard
    /// holding it), and global referential integrity.
    pub fn validate(&self) -> Result<(), ShardError> {
        for (i, shard) in self.shards.iter().enumerate() {
            shard.validate_structure()?;
            for schema in self.catalog.tables() {
                for (_, row) in shard.table_data(schema.id).iter() {
                    let key = TableData::pk_of(&self.catalog, schema, row);
                    let want = self.partitioner.shard_of_key(&key);
                    if want != i {
                        return Err(ShardError::Placement(format!(
                            "{}{} lives on shard {i} but hashes to shard {want}",
                            schema.name,
                            fmt_key(&key)
                        )));
                    }
                }
            }
        }
        // Global FK scan: same error string as the unsharded validator.
        for fk in self.catalog.foreign_keys() {
            let from = self.catalog.attribute(fk.from);
            let target_table = self.catalog.attribute(fk.to).table;
            for shard in &self.shards {
                for (_, row) in shard.table_data(from.table).iter() {
                    let v = row.get(from.position);
                    if v.is_null() {
                        continue;
                    }
                    let owner = self.partitioner.shard_of_key(std::slice::from_ref(v));
                    if self.shards[owner]
                        .table_data(target_table)
                        .lookup_pk(std::slice::from_ref(v))
                        .is_none()
                    {
                        return Err(ShardError::Store(StoreError::ForeignKeyViolation(format!(
                            "{} = {v}",
                            self.catalog.qualified_name(fk.from)
                        ))));
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Merged statistics
    // ------------------------------------------------------------------

    /// Merged attribute statistics: integer partials absorbed per shard,
    /// finished once.
    fn merged_attribute_stats(&self, attr: AttrId) -> AttributeStats {
        let table = self.catalog.attribute(attr).table;
        let mut acc = AttributeStatsAccumulator::new();
        for shard in &self.shards {
            acc.absorb(&self.catalog, shard.table_data(table), attr);
        }
        acc.finish()
    }

    /// Merged join statistics: unfiltered per-shard counts plus the live
    /// referenced-PK set, filtered and entropy-evaluated once at the end.
    fn merged_join_stats(&self, fk: ForeignKey) -> JoinStats {
        let from_table = self.catalog.attribute(fk.from).table;
        let to_table = self.catalog.attribute(fk.to).table;
        let mut acc = JoinStatsAccumulator::new();
        for shard in &self.shards {
            acc.absorb_referencing(&self.catalog, fk, shard.table_data(from_table));
        }
        for shard in &self.shards {
            acc.absorb_referenced(&self.catalog, fk, shard.table_data(to_table));
        }
        acc.finish()
    }

    /// Refresh the merged statistics a mutation of `tid` can change (or
    /// mark the table dirty inside a deferral scope).
    fn recompute_stats_for(&mut self, tid: TableId) {
        if let Some(dirty) = &mut self.stats_dirty {
            dirty.insert(tid);
            return;
        }
        let attrs = self.catalog.table(tid).attributes.clone();
        let astats: Vec<(AttrId, AttributeStats)> = attrs
            .iter()
            .map(|a| (*a, self.merged_attribute_stats(*a)))
            .collect();
        for (a, s) in astats {
            self.attr_stats.insert(a, s);
        }
        let jstats: Vec<(ForeignKey, JoinStats)> = self
            .catalog
            .fks_of_table(tid)
            .into_iter()
            .map(|fk| (fk, self.merged_join_stats(fk)))
            .collect();
        for (fk, s) in jstats {
            self.join_stats.insert(fk, s);
        }
    }

    /// Recompute every merged statistic from scratch, in parallel across
    /// attributes when configured (each slot is independent; results land
    /// in a fixed order, so parallelism cannot perturb anything).
    fn rebuild_all_stats(&mut self) {
        let n = self.catalog.attribute_count();
        let astats = map_range(n, self.parallel, |a| {
            let attr = AttrId(a as u32);
            (attr, self.merged_attribute_stats(attr))
        });
        let fks: Vec<ForeignKey> = self.catalog.foreign_keys().to_vec();
        let jstats = map_range(fks.len(), self.parallel, |i| {
            (fks[i], self.merged_join_stats(fks[i]))
        });
        self.attr_stats = astats.into_iter().collect();
        self.join_stats = jstats.into_iter().collect();
    }

    // ------------------------------------------------------------------
    // Scatter-gather scoring
    // ------------------------------------------------------------------

    /// Normalize a keyword into a reusable probe (`None` when it
    /// normalizes away, making every score 0).
    pub fn prepare_probe(&self, keyword: &str) -> Option<KeywordProbe> {
        KeywordProbe::new(keyword)
    }

    /// The paper's search function over the shard set — bit-identical to
    /// `Database::search_score` on the unsharded union.
    pub fn search_score(&self, attr: AttrId, keyword: &str) -> f64 {
        match KeywordProbe::new(keyword) {
            Some(probe) => self.search_score_probe(attr, &probe),
            None => 0.0,
        }
    }

    /// [`ShardedStore::search_score`] for a prepared probe: absorb each
    /// shard's integer partials, evaluate the score formula once from the
    /// merged state, and — for phrases — rerun the conjunctive scan per
    /// shard under the merged idfs, gathering by max.
    pub fn search_score_probe(&self, attr: AttrId, probe: &KeywordProbe) -> f64 {
        self.score_probe_timed(attr, probe, None)
    }

    /// [`ShardedStore::search_score_probe`] with optional per-shard wall
    /// accounting: when `timings` is `Some`, each shard's share of this
    /// probe's work (partial absorb + conjunctive rescan) is added to its
    /// slot, in nanoseconds. The scoring arithmetic is identical either way
    /// — the clocks wrap the per-shard sections without reordering any
    /// float operation, so instrumented scores stay bit-identical (the
    /// shard identity suite runs with the global registry enabled).
    fn score_probe_timed(
        &self,
        attr: AttrId,
        probe: &KeywordProbe,
        mut timings: Option<&mut [u64]>,
    ) -> f64 {
        let mut acc = ScoreAccumulator::new(probe.tokens().len());
        let mut any_index = false;
        for (s, shard) in self.shards.iter().enumerate() {
            let start = timings.is_some().then(std::time::Instant::now);
            if let Some(ix) = shard.index(attr) {
                any_index = true;
                acc.absorb(ix, probe);
            }
            if let (Some(start), Some(t)) = (start, timings.as_deref_mut()) {
                t[s] += quest_obs::duration_ns(start.elapsed());
            }
        }
        if !any_index {
            // Not a full-text attribute: the unsharded store returns 0 too.
            return 0.0;
        }
        let raw = if probe.tokens().len() == 1 {
            acc.single_token_raw()
        } else if acc.any_token_absent() {
            0.0
        } else {
            let idfs = acc.idfs();
            let mut best: Option<f64> = None;
            for (s, shard) in self.shards.iter().enumerate() {
                let start = timings.is_some().then(std::time::Instant::now);
                if let Some(ix) = shard.index(attr) {
                    if let Some(score) = ix.best_conjunctive_score(probe.tokens(), &idfs) {
                        best = match best {
                            Some(b) if b >= score => Some(b),
                            _ => Some(score),
                        };
                    }
                }
                if let (Some(start), Some(t)) = (start, timings.as_deref_mut()) {
                    t[s] += quest_obs::duration_ns(start.elapsed());
                }
            }
            best.unwrap_or(0.0)
        };
        relstore::index::normalize_score(raw, acc.normalization_coefficient())
    }

    /// One scatter for a whole keyword: the per-attribute score table,
    /// indexed by `AttrId`. Computing all attributes at once lets the
    /// emission pass above run from a lookup table instead of fanning out
    /// to every shard once per `(keyword, attribute)` pair, and the
    /// per-attribute work parallelizes freely (each slot is independent).
    ///
    /// While the global registry is enabled, each shard's share of the
    /// scatter wall is summed across attributes (on the calling thread,
    /// after the fan-out joins) into `quest_shard_scatter_ns{shard=<i>}`,
    /// the fan-out imbalance gauge, and the thread-local trace handoff
    /// ([`quest_obs::scatter`]).
    pub fn scatter_value_scores(&self, probe: &KeywordProbe) -> Vec<f64> {
        if !quest_obs::global().is_enabled() {
            return map_range(self.catalog.attribute_count(), self.parallel, |a| {
                self.search_score_probe(AttrId(a as u32), probe)
            });
        }
        let shard_count = self.shards.len();
        let timed = map_range(self.catalog.attribute_count(), self.parallel, |a| {
            let mut per_shard = vec![0u64; shard_count];
            let score = self.score_probe_timed(AttrId(a as u32), probe, Some(&mut per_shard));
            (score, per_shard)
        });
        let mut sums = vec![0u64; shard_count];
        let mut scores = Vec::with_capacity(timed.len());
        for (score, per_shard) in timed {
            scores.push(score);
            for (s, ns) in per_shard.into_iter().enumerate() {
                sums[s] += ns;
            }
        }
        record_scatter(&sums);
        record_scatter_amplification(scores.len() * shard_count, &scores);
        scores
    }

    // ------------------------------------------------------------------
    // SQL execution
    // ------------------------------------------------------------------

    /// Gather the listed tables' rows into one scratch database (full
    /// catalog, no index build — the executor only reads raw rows), cached
    /// until the next mutation.
    fn gathered(&self, from: &[TableId]) -> Result<Arc<Database>, StoreError> {
        let mut key: Vec<TableId> = from.to_vec();
        key.sort_unstable_by_key(|t| t.0);
        key.dedup();
        if let Some(db) = self
            .scratch
            .lock()
            .expect("scratch lock poisoned")
            .get(&key)
        {
            return Ok(db.clone());
        }
        let mut db = Database::new(self.catalog.clone())?;
        for tid in &key {
            let schema = self.catalog.table(*tid);
            for shard in &self.shards {
                for (_, row) in shard.table_data(*tid).iter() {
                    db.insert_unchecked(&schema.name, row.clone())?;
                }
            }
        }
        let db = Arc::new(db);
        self.scratch
            .lock()
            .expect("scratch lock poisoned")
            .insert(key, db.clone());
        Ok(db)
    }

    /// Execute a generated SQL statement over the shard set.
    ///
    /// Single-table statements scatter to every shard (each scans only its
    /// own rows) and merge; join statements run over a gathered scratch
    /// database. Result rows come back in **canonical value order** (SQL
    /// set semantics — the unsharded executor's row order is a storage
    /// artifact that sharding legitimately permutes), `DISTINCT` dedups
    /// across shards, and `LIMIT` applies after the merge so the kept
    /// prefix is deterministic.
    pub fn execute(&self, stmt: &SelectStatement) -> Result<ResultSet, StoreError> {
        let mut inner = stmt.clone();
        inner.limit = None;
        let mut rs = if stmt.from.len() == 1 {
            let parts = map_range(self.shards.len(), self.parallel, |i| {
                relstore::sql::execute(&self.shards[i], &inner)
            });
            let mut merged: Option<ResultSet> = None;
            for part in parts {
                let part = part?;
                match &mut merged {
                    None => merged = Some(part),
                    Some(m) => m.rows.extend(part.rows),
                }
            }
            merged.expect("shard_count >= 1")
        } else {
            relstore::sql::execute(self.gathered(&stmt.from)?.as_ref(), &inner)?
        };
        rs.rows.sort_by(|a, b| a.values().cmp(b.values()));
        if stmt.distinct {
            rs.rows.dedup();
        }
        if let Some(l) = stmt.limit {
            rs.rows.truncate(l);
        }
        Ok(rs)
    }

    /// Whether the statement returns at least one row — a scatter with
    /// early exit for single-table statements, the gathered database for
    /// joins. Agrees exactly with the unsharded answer (a boolean has no
    /// row order to disagree about).
    pub fn has_results(&self, stmt: &SelectStatement) -> Result<bool, StoreError> {
        if stmt.from.len() == 1 {
            let mut probe = stmt.clone();
            probe.limit = Some(1);
            probe.distinct = false;
            for shard in &self.shards {
                if !relstore::sql::execute(shard, &probe)?.is_empty() {
                    return Ok(true);
                }
            }
            Ok(false)
        } else {
            relstore::sql::has_results(self.gathered(&stmt.from)?.as_ref(), stmt)
        }
    }

    // ------------------------------------------------------------------
    // Reshaping
    // ------------------------------------------------------------------

    /// Merge every shard back into one unsharded database (full catalog,
    /// finalized) — the reference the identity suite compares against, and
    /// an escape hatch back to single-store deployment.
    pub fn gather(&self) -> Result<Database, StoreError> {
        let mut db = Database::new(self.catalog.clone())?;
        for schema in self.catalog.tables() {
            for shard in &self.shards {
                for (_, row) in shard.table_data(schema.id).iter() {
                    db.insert_unchecked(&schema.name, row.clone())?;
                }
            }
        }
        db.finalize();
        Ok(db)
    }

    /// Repartition into a new shard count. Rows are routed afresh by the
    /// same PK hash (deterministic order: tables, then source shards, then
    /// row slots), shard indexes are rebuilt, and merged statistics are
    /// recomputed — so an `n → m → n` round trip preserves every row and
    /// every merged score and statistic bit for bit (placement depends
    /// only on key hashes, never on history).
    pub fn rebalance(&self, config: &ShardConfig) -> Result<ShardedStore, ShardError> {
        let mut store = ShardedStore::empty(self.catalog.clone(), config)?;
        for schema in self.catalog.tables() {
            for shard in &self.shards {
                for (_, row) in shard.table_data(schema.id).iter() {
                    let key = TableData::pk_of(&self.catalog, schema, row);
                    let s = store.partitioner.shard_of_key(&key);
                    store.shards[s].insert_unchecked(&schema.name, row.clone())?;
                }
            }
        }
        store.finalize_shards();
        store.rebuild_all_stats();
        Ok(store)
    }
}
