//! [`ShardedPrimary`]: a shard as the unit of replication.
//!
//! Each shard owns a full [`Primary`] — its own write-ahead log, its own
//! snapshots, its own recovery — over the shard's FK-less database. A
//! gateway [`ScatterGather`] engine (over a store that mirrors the shards)
//! performs the *global* accept/reject decisions and serves searches; the
//! router then fans each **accepted** record out to the shard its partition
//! key owns. Because acceptance was decided globally, a shard never rejects
//! a record it is handed — its WAL replays deterministically — and a shard
//! whose commit fails anyway (I/O, poisoned log) is **fenced**: the
//! topology reports it broken and every subsequent search or commit returns
//! a typed [`ShardError::ShardDown`] instead of silently partial results.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use quest_core::{QuestConfig, SearchOutcome};
use quest_fault::{Clock, FaultKind, RetryPolicy, SystemClock};
use quest_replica::{Primary, PrimaryOptions, ReplicaError};
use quest_serve::ApplyReport;
use quest_wal::ChangeRecord;
use relstore::{Catalog, Database, Row, TableData};

use crate::config::ShardConfig;
use crate::error::ShardError;
use crate::partition::Partitioner;
use crate::scatter::ScatterGather;
use crate::store::ShardedStore;

/// Subdirectory of one shard's primary inside the set's directory.
fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}"))
}

/// Count one fence event (a shard marked broken) in the global registry.
fn count_fence() {
    quest_obs::global().counter(crate::names::FENCE).inc();
}

/// Count one refused operation (search/commit against a fenced set).
fn count_down() {
    quest_obs::global().counter(crate::names::DOWN).inc();
}

/// Everything a fenced shard needs to be healed in place.
///
/// `lsn_before` is the shard's watermark captured **before** the failed
/// commit attempt and `pending` is the per-shard record slice that never
/// (or only partially) reached its log; together they bound exactly what
/// [`ShardedPrimary::recover`] must replay or re-commit, and let it verify
/// the healed watermark to the record.
#[derive(Debug, Clone)]
struct FenceState {
    /// Why the shard was fenced (updated with the latest recovery error).
    reason: String,
    /// The shard's last LSN before the failed commit attempt.
    lsn_before: u64,
    /// Records the gateway accepted for this shard that its log may miss.
    pending: Vec<ChangeRecord>,
    /// Failed recovery attempts so far.
    attempts: u32,
    /// Escalated: recovery failed [`RetryPolicy::retries`] times; only an
    /// operator restart clears this.
    permanent: bool,
    /// Earliest clock reading at which the next recovery probe is due.
    next_probe: Duration,
}

/// Point-in-time view of the shard set's replication state.
#[derive(Debug, Clone)]
pub struct ShardTopology {
    /// Number of shards.
    pub shard_count: usize,
    /// Each shard's last applied LSN (shard LSN sequences are independent).
    pub lsns: Vec<u64>,
    /// Fence reasons, by shard; `None` = healthy. Any `Some` means the set
    /// refuses reads and writes until repaired.
    pub broken: Vec<Option<String>>,
}

impl ShardTopology {
    /// Whether every shard is serving.
    pub fn is_healthy(&self) -> bool {
        self.broken.iter().all(Option::is_none)
    }

    /// Grade the set against `spec`. The lag observation is the commit
    /// **skew** between the most- and least-advanced serving shards (shard
    /// LSN sequences are independent, so skew — not absolute position — is
    /// the meaningful staleness signal; fenced shards are excluded because
    /// their skew grows without bound). Every fenced shard additionally
    /// forces a [`Critical`](quest_obs::HealthStatus::Critical) reason of
    /// its own. Purely observational: grading health never changes fencing
    /// or routing.
    pub fn health(&self, spec: &quest_obs::SloSpec) -> quest_obs::HealthReport {
        let serving: Vec<u64> = self
            .lsns
            .iter()
            .zip(&self.broken)
            .filter(|(_, state)| state.is_none())
            .map(|(&lsn, _)| lsn)
            .collect();
        let skew = match (serving.iter().max(), serving.iter().min()) {
            (Some(max), Some(min)) => Some(max - min),
            _ => None,
        };
        let mut report = spec.evaluate(&quest_obs::HealthInputs {
            p99_us: None,
            error_rate: None,
            lag: skew,
        });
        for (shard, state) in self.broken.iter().enumerate() {
            if let Some(reason) = state {
                report.push(
                    quest_obs::HealthStatus::Critical,
                    format!("shard {shard} fenced: {reason}"),
                );
            }
        }
        report
    }
}

/// What one [`ShardedPrimary::commit`] did.
#[derive(Debug)]
pub struct ShardReceipt {
    /// Per-record outcome of the *global* accept/reject pass — identical
    /// to the report the unsharded serving layer would produce for the
    /// same batch against the same data.
    pub report: ApplyReport,
    /// Each shard's last LSN after the commit — the vector to pass to
    /// per-shard replicas for read-your-writes.
    pub lsns: Vec<u64>,
}

/// The sharded write point: a gateway engine for global decisions and
/// searches, plus one [`Primary`] per shard for durability.
///
/// The gateway's store and the shard primaries hold separate copies of the
/// shard databases; they stay in lockstep because both apply exactly the
/// accepted records in batch order. That duplication buys clean layering —
/// each shard primary is a stock, independently recoverable `Primary` that
/// existing [`Replica`](quest_replica::Replica)s can bootstrap from and
/// tail, unchanged.
#[derive(Debug)]
pub struct ShardedPrimary {
    catalog: Catalog,
    partitioner: Partitioner,
    shards: Vec<Primary>,
    fences: Vec<Option<FenceState>>,
    gateway: ScatterGather,
    /// Root directory of the set — each shard's primary lives in
    /// `dir/shard-NNN/`, which is where [`ShardedPrimary::recover`] reopens
    /// it from.
    dir: PathBuf,
    /// The single-partition engine config every shard primary runs under.
    shard_engine_config: QuestConfig,
    retry: RetryPolicy,
    clock: Arc<dyn Clock>,
}

impl ShardedPrimary {
    /// Start a fresh sharded primary in `dir` over `db`: the database is
    /// hash-partitioned, each shard's primary opens in `dir/shard-NNN/`
    /// (publishing a bootstrap snapshot at LSN 0), and the gateway engine
    /// is built over the same partitioning.
    pub fn open(
        dir: &Path,
        db: Database,
        shard_config: &ShardConfig,
        config: QuestConfig,
    ) -> Result<ShardedPrimary, ShardError> {
        let store = ShardedStore::from_database(&db, shard_config)?;
        let mut shard_engine_config = config.clone();
        shard_engine_config.shard_count = 1; // each shard primary is a single partition
        let mut shards = Vec::with_capacity(store.shard_count());
        for i in 0..store.shard_count() {
            shards.push(Primary::open(
                &shard_dir(dir, i),
                store.shard(i).clone(),
                shard_engine_config.clone(),
            )?);
        }
        let partitioner = *store.partitioner();
        let catalog = store.catalog().clone();
        let fences = vec![None; store.shard_count()];
        let gateway = ScatterGather::from_store(store, config)?;
        Ok(ShardedPrimary {
            catalog,
            partitioner,
            shards,
            fences,
            gateway,
            dir: dir.to_path_buf(),
            shard_engine_config,
            retry: RetryPolicy::from_env(),
            clock: Arc::new(SystemClock::new()),
        })
    }

    /// Resume a sharded primary: recover every shard's primary from its
    /// snapshot + log suffix, reassemble the gateway store from the
    /// recovered shard databases (verifying placement and global
    /// referential integrity), and continue each shard's LSN sequence.
    /// `catalog` is the full catalog — foreign keys included — which the
    /// FK-less shard logs cannot carry.
    pub fn reopen(
        dir: &Path,
        catalog: Catalog,
        shard_config: &ShardConfig,
        config: QuestConfig,
    ) -> Result<ShardedPrimary, ShardError> {
        shard_config.validate()?;
        let mut shard_engine_config = config.clone();
        shard_engine_config.shard_count = 1;
        let mut shards = Vec::with_capacity(shard_config.shard_count);
        let mut dbs = Vec::with_capacity(shard_config.shard_count);
        for i in 0..shard_config.shard_count {
            let primary = Primary::reopen(
                &shard_dir(dir, i),
                shard_engine_config.clone(),
                PrimaryOptions::default(),
            )?;
            let db = {
                let engine = primary.engine().engine();
                engine.wrapper().database().clone()
            };
            dbs.push(db);
            shards.push(primary);
        }
        let store = ShardedStore::from_shards(catalog.clone(), dbs, shard_config)?;
        let partitioner = *store.partitioner();
        let fences = vec![None; shard_config.shard_count];
        let gateway = ScatterGather::from_store(store, config)?;
        Ok(ShardedPrimary {
            catalog,
            partitioner,
            shards,
            fences,
            gateway,
            dir: dir.to_path_buf(),
            shard_engine_config,
            retry: RetryPolicy::from_env(),
            clock: Arc::new(SystemClock::new()),
        })
    }

    /// Override the retry policy and clock used by commit-level retries and
    /// by [`ShardedPrimary::supervise`]'s probe-after-backoff scheduling.
    /// Tests inject a [`ManualClock`](quest_fault::ManualClock) so no
    /// wall-clock time passes.
    pub fn set_recovery(&mut self, retry: RetryPolicy, clock: Arc<dyn Clock>) {
        self.retry = retry;
        self.clock = clock;
    }

    /// Commit a mutation batch.
    ///
    /// The gateway applies the whole batch first — global integrity checks,
    /// per-record accept/reject, epoch bump — producing a report identical
    /// to the unsharded serving layer's. Accepted records are then grouped
    /// by owning shard (order preserved; a PK-moving update becomes a
    /// delete on the old shard and an insert on the new one) and committed
    /// through each shard's [`Primary`]. A commit-level fault classified
    /// transient ([`ShardError::is_transient`]) is retried under the set's
    /// [`RetryPolicy`] before giving up. A shard whose commit still fails —
    /// or that, impossibly, rejects a globally accepted record — is fenced
    /// **with its pending records captured**, the remaining shards are
    /// committed anyway (their logs must not fall behind the gateway copy),
    /// and the commit returns the first [`ShardError::ShardDown`]. The
    /// fence holds everything [`ShardedPrimary::recover`] needs to re-drive
    /// the missed slice and rejoin the set.
    pub fn commit(&mut self, batch: &[ChangeRecord]) -> Result<ShardReceipt, ShardError> {
        self.ensure_healthy()?;
        let report = self.gateway.apply(batch)?;
        let rejected: HashSet<usize> = report.rejected.iter().map(|(i, _)| *i).collect();
        let mut per_shard: Vec<Vec<ChangeRecord>> = vec![Vec::new(); self.shards.len()];
        for (i, record) in batch.iter().enumerate() {
            if rejected.contains(&i) {
                continue;
            }
            self.route_record(record, &mut per_shard)?;
        }
        let mut lsns = vec![0u64; self.shards.len()];
        let mut first_down: Option<ShardError> = None;
        for (s, records) in per_shard.iter().enumerate() {
            if records.is_empty() {
                lsns[s] = self.shards[s].last_lsn();
                continue;
            }
            let lsn_before = self.shards[s].last_lsn();
            match self.commit_shard(s, records) {
                Ok(last_lsn) => lsns[s] = last_lsn,
                Err(e) => {
                    let reason = e.to_string();
                    self.install_fence(s, reason.clone(), lsn_before, records.clone());
                    lsns[s] = self.shards[s].last_lsn();
                    if first_down.is_none() {
                        first_down = Some(ShardError::ShardDown { shard: s, reason });
                    }
                }
            }
        }
        match first_down {
            Some(e) => Err(e),
            None => Ok(ShardReceipt { report, lsns }),
        }
    }

    /// Drive `records` into shard `s`'s primary, retrying transient faults
    /// under the set's [`RetryPolicy`].
    fn commit_shard(&mut self, s: usize, records: &[ChangeRecord]) -> Result<u64, ShardError> {
        let mut attempt = 0u32;
        loop {
            if let Some(fault) = quest_fault::fire(quest_fault::sites::SHARD_COMMIT) {
                if matches!(fault.kind, FaultKind::SlowIo) {
                    fault.stall();
                } else {
                    let err: ShardError =
                        ReplicaError::Wal(quest_wal::WalError::Io(fault.io_error())).into();
                    if err.is_transient() && attempt < self.retry.retries {
                        quest_fault::count_retry();
                        self.clock.sleep(self.retry.delay(attempt));
                        attempt += 1;
                        continue;
                    }
                    return Err(err);
                }
            }
            let receipt = self.shards[s].commit(records)?;
            if !receipt.report.all_applied() {
                // The shard's copy disagreed with the gateway's global
                // decision: the copies have diverged. Not retryable.
                return Err(ShardError::Recovery(format!(
                    "shard rejected {} globally accepted record(s)",
                    receipt.report.rejected.len()
                )));
            }
            return Ok(receipt.last_lsn);
        }
    }

    /// Heal fenced shard `shard` in place: reopen its primary from
    /// snapshot + log suffix, verify the replayed watermark lies inside the
    /// fence window, re-commit whatever suffix of the fence's pending
    /// records the log misses, verify the final watermark matches the
    /// fence's expectation exactly, then swap the fresh primary in and lift
    /// the fence. On any verification failure the shard stays fenced and
    /// the error becomes the fence's new reason.
    pub fn recover(&mut self, shard: usize) -> Result<(), ShardError> {
        let fence = match &self.fences[shard] {
            Some(f) => f.clone(),
            None => return Ok(()),
        };
        let primary = Primary::reopen(
            &shard_dir(&self.dir, shard),
            self.shard_engine_config.clone(),
            PrimaryOptions::default(),
        )?;
        let replayed = primary.last_lsn();
        let expect = fence.lsn_before + fence.pending.len() as u64;
        if replayed < fence.lsn_before || replayed > expect {
            return Err(ShardError::Recovery(format!(
                "shard {shard} replayed to lsn {replayed}, outside the fence \
                 window [{}, {expect}]",
                fence.lsn_before
            )));
        }
        // The log already holds `replayed - lsn_before` of the pending
        // records (a torn commit can land a prefix); re-drive only the
        // missing suffix so nothing is logged twice.
        let missing = &fence.pending[(replayed - fence.lsn_before) as usize..];
        if !missing.is_empty() {
            let receipt = primary.commit(missing)?;
            if !receipt.report.all_applied() {
                return Err(ShardError::Recovery(format!(
                    "shard {shard} re-rejected {} pending record(s) during recovery",
                    receipt.report.rejected.len()
                )));
            }
        }
        if primary.last_lsn() != expect {
            return Err(ShardError::Recovery(format!(
                "shard {shard} recovered to lsn {} but the fence expected {expect}",
                primary.last_lsn()
            )));
        }
        self.shards[shard] = primary;
        self.fences[shard] = None;
        quest_fault::quarantined("shard").sub(1);
        quest_fault::count_heal("shard");
        Ok(())
    }

    /// One supervision tick: attempt [`ShardedPrimary::recover`] on every
    /// fenced, non-permanent shard whose backoff has elapsed. A failed
    /// attempt reschedules the probe under the retry policy's backoff; a
    /// shard that exhausts [`RetryPolicy::retries`] attempts escalates to
    /// permanent and is left for the operator. Returns how many shards
    /// healed this tick.
    pub fn supervise(&mut self) -> usize {
        let now = self.clock.now();
        let mut healed = 0;
        for shard in 0..self.fences.len() {
            let due = matches!(
                &self.fences[shard],
                Some(f) if !f.permanent && now >= f.next_probe
            );
            if !due {
                continue;
            }
            match self.recover(shard) {
                Ok(()) => healed += 1,
                Err(e) => {
                    let retries = self.retry.retries;
                    let delay = self
                        .retry
                        .delay(self.fences[shard].as_ref().map(|f| f.attempts).unwrap_or(0));
                    if let Some(f) = self.fences[shard].as_mut() {
                        f.attempts += 1;
                        f.reason = e.to_string();
                        if f.attempts >= retries {
                            f.permanent = true;
                            quest_fault::count_escalation("shard");
                        } else {
                            quest_fault::count_retry();
                            f.next_probe = now + delay;
                        }
                    }
                }
            }
        }
        healed
    }

    /// Route one accepted record to the shard(s) that must log it.
    fn route_record(
        &self,
        record: &ChangeRecord,
        per_shard: &mut [Vec<ChangeRecord>],
    ) -> Result<(), ShardError> {
        match record {
            ChangeRecord::Insert { table, row } => {
                let tid = self.catalog.table_id(table).map_err(ShardError::Store)?;
                let schema = self.catalog.table(tid);
                let key = TableData::pk_of(&self.catalog, schema, &Row::new(row.clone()));
                per_shard[self.partitioner.shard_of_key(&key)].push(record.clone());
            }
            ChangeRecord::Delete { key, .. } => {
                per_shard[self.partitioner.shard_of_key(key)].push(record.clone());
            }
            ChangeRecord::Update { table, key, row } => {
                let tid = self.catalog.table_id(table).map_err(ShardError::Store)?;
                let schema = self.catalog.table(tid);
                let new_key = TableData::pk_of(&self.catalog, schema, &Row::new(row.clone()));
                let old_shard = self.partitioner.shard_of_key(key);
                let new_shard = self.partitioner.shard_of_key(&new_key);
                if old_shard == new_shard {
                    per_shard[old_shard].push(record.clone());
                } else {
                    // A PK move crosses shards: the old shard logs the
                    // disappearance, the new shard logs the appearance —
                    // exactly the store's cross-shard update semantics.
                    per_shard[old_shard].push(ChangeRecord::Delete {
                        table: table.clone(),
                        key: key.clone(),
                    });
                    per_shard[new_shard].push(ChangeRecord::Insert {
                        table: table.clone(),
                        row: row.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Run one keyword search through the gateway engine. Refuses with
    /// [`ShardError::ShardDown`] while any shard is fenced — a broken
    /// shard means part of the data is unaccounted for, and a partial
    /// answer would be silently wrong.
    pub fn search(&self, raw_query: &str) -> Result<SearchOutcome, ShardError> {
        self.ensure_healthy()?;
        self.gateway.search(raw_query).map_err(ShardError::Engine)
    }

    /// The current replication state of the set.
    pub fn topology(&self) -> ShardTopology {
        ShardTopology {
            shard_count: self.shards.len(),
            lsns: self.shards.iter().map(Primary::last_lsn).collect(),
            broken: self
                .fences
                .iter()
                .map(|f| f.as_ref().map(|f| f.reason.clone()))
                .collect(),
        }
    }

    /// Operator fence: mark a shard broken (e.g. after out-of-band
    /// detection of a poisoned WAL or failing disk). Subsequent searches
    /// and commits return [`ShardError::ShardDown`] until repair — which
    /// [`ShardedPrimary::supervise`] attempts automatically (an operator
    /// fence carries no pending records, so recovery is reopen + verify).
    pub fn fence(&mut self, shard: usize, reason: impl Into<String>) {
        let lsn_before = self.shards[shard].last_lsn();
        self.install_fence(shard, reason.into(), lsn_before, Vec::new());
    }

    /// Record a fence, charging the quarantine gauge only on the
    /// not-fenced → fenced edge.
    fn install_fence(
        &mut self,
        shard: usize,
        reason: String,
        lsn_before: u64,
        pending: Vec<ChangeRecord>,
    ) {
        if self.fences[shard].is_none() {
            quest_fault::quarantined("shard").add(1);
        }
        self.fences[shard] = Some(FenceState {
            reason,
            lsn_before,
            pending,
            attempts: 0,
            permanent: false,
            next_probe: self.clock.now(),
        });
        count_fence();
    }

    /// Whether every shard is serving.
    pub fn is_healthy(&self) -> bool {
        self.fences.iter().all(Option::is_none)
    }

    fn ensure_healthy(&self) -> Result<(), ShardError> {
        for (shard, state) in self.fences.iter().enumerate() {
            if let Some(fence) = state {
                count_down();
                return Err(ShardError::ShardDown {
                    shard,
                    reason: fence.reason.clone(),
                });
            }
        }
        Ok(())
    }

    /// Fsync every shard's log (group durability point).
    pub fn sync(&self) -> Result<(), ShardError> {
        for primary in &self.shards {
            primary.sync()?;
        }
        Ok(())
    }

    /// Publish a snapshot on every shard, returning each shard's snapshot
    /// LSN. New replicas bootstrap per shard from these.
    pub fn publish_snapshots(&self) -> Result<Vec<u64>, ShardError> {
        self.shards
            .iter()
            .map(|p| p.publish_snapshot().map_err(ShardError::Replica))
            .collect()
    }

    /// One shard's primary — the WAL/snapshot endpoints a per-shard
    /// [`Replica`](quest_replica::Replica) bootstraps from and tails.
    pub fn shard(&self, i: usize) -> &Primary {
        &self.shards[i]
    }

    /// The gateway serving engine (searches, stats).
    pub fn gateway(&self) -> &ScatterGather {
        &self.gateway
    }
}

#[cfg(test)]
mod tests {
    use super::ShardTopology;
    use quest_obs::{HealthStatus, SloSpec};

    #[test]
    fn topology_health_grades_skew_and_fences() {
        let spec = SloSpec {
            max_lag: Some(2),
            ..SloSpec::default()
        };
        let mut topo = ShardTopology {
            shard_count: 3,
            lsns: vec![10, 7, 10],
            broken: vec![None, None, None],
        };
        // Skew 3 exceeds the bound of 2 but not 2× it: degraded.
        let report = topo.health(&spec);
        assert_eq!(report.status, HealthStatus::Degraded);
        assert!(
            report.reasons.iter().any(|r| r.contains("lag")),
            "{report:?}"
        );

        // Caught up: healthy.
        topo.lsns = vec![10, 10, 10];
        assert_eq!(topo.health(&spec).status, HealthStatus::Healthy);

        // Skew at 2× the bound: critical.
        topo.lsns = vec![10, 6, 10];
        assert_eq!(topo.health(&spec).status, HealthStatus::Critical);

        // A fenced shard is critical regardless of skew, with its own
        // reason, and drops out of the skew observation.
        topo.lsns = vec![10, 0, 10];
        topo.broken[1] = Some("disk gone".into());
        let report = topo.health(&spec);
        assert_eq!(report.status, HealthStatus::Critical);
        assert!(
            report.reasons.iter().any(|r| r.contains("shard 1 fenced")),
            "{report:?}"
        );
        assert!(
            !report.reasons.iter().any(|r| r.contains("lag")),
            "fenced shard must not feed the skew observation: {report:?}"
        );

        // An empty spec never violates: grading is opt-in.
        topo.broken[1] = None;
        assert_eq!(
            topo.health(&SloSpec::default()).status,
            HealthStatus::Healthy
        );
    }
}
