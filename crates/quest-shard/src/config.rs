//! Shard-set configuration.

use crate::error::ShardError;

/// Upper bound on the shard count. Matches the bound
/// `QuestConfig::validate` enforces on its `shard_count` knob: beyond this,
/// per-shard fixed costs dwarf any per-query win at this engine's scale.
pub const MAX_SHARD_COUNT: usize = 1024;

/// How a [`ShardedStore`](crate::ShardedStore) is partitioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of hash partitions. Valid range `1..=MAX_SHARD_COUNT`
    /// (1 = a single partition, useful as the degenerate identity case);
    /// 0 is rejected by [`ShardConfig::validate`] — a zero-shard set would
    /// serve every query from no data.
    pub shard_count: usize,
    /// Run data-proportional per-shard work (index builds, statistics
    /// merges, scatter scans) on scoped threads, one per shard. Results are
    /// always merged in shard-index order, so this knob changes wall-clock
    /// time and nothing else — bit-identity holds either way.
    pub parallel: bool,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shard_count: 4,
            parallel: true,
        }
    }
}

impl ShardConfig {
    /// A config with `shard_count` partitions and parallel scatter enabled.
    pub fn new(shard_count: usize) -> ShardConfig {
        ShardConfig {
            shard_count,
            ..ShardConfig::default()
        }
    }

    /// Reject out-of-range shard counts. `shard_count = 0` is the important
    /// case: it would partition every row into nothing and serve every
    /// query from no data, so it is a configuration error, not a degenerate
    /// success.
    pub fn validate(&self) -> Result<(), ShardError> {
        if self.shard_count == 0 {
            return Err(ShardError::Config(format!(
                "shard_count = 0 would serve every query from no data; \
                 valid range is 1..={MAX_SHARD_COUNT} (1 = unsharded)"
            )));
        }
        if self.shard_count > MAX_SHARD_COUNT {
            return Err(ShardError::Config(format!(
                "shard_count = {} exceeds the maximum of {MAX_SHARD_COUNT}",
                self.shard_count
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shard_count_rejected() {
        let err = ShardConfig::new(0).validate().unwrap_err();
        assert!(err.to_string().contains("shard_count = 0"));
        for ok in [1, 2, 16, MAX_SHARD_COUNT] {
            assert!(ShardConfig::new(ok).validate().is_ok());
        }
        assert!(ShardConfig::new(MAX_SHARD_COUNT + 1).validate().is_err());
    }
}
