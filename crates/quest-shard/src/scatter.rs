//! [`ScatterGather`]: the cached serving engine over a sharded store.

use std::sync::Arc;

use quest_core::{Quest, QuestConfig, QuestError, SearchOutcome, SourceWrapper};
use quest_serve::{ApplyReport, CacheConfig, CachedEngine, ServeError, ServeStats};
use quest_wal::ChangeRecord;
use relstore::Database;

use crate::config::ShardConfig;
use crate::error::ShardError;
use crate::store::ShardedStore;
use crate::wrapper::ShardedWrapper;

/// A QUEST engine over N shards behind the standard serving layer.
///
/// The forward pass scatters once per keyword (filling the per-attribute
/// score table at prepare time), the merged statistics feed the same
/// HMM/DST machinery as the unsharded engine, and backward/assembly run on
/// the merged candidate state — so search outcomes are **bit-identical** to
/// [`CachedEngine`] over the unsharded database: same SQL text, same score
/// bits, same ranking order. Mutation batches go through
/// [`ScatterGather::apply`] with the same per-record accept/reject
/// semantics the WAL protocol relies on.
#[derive(Debug)]
pub struct ScatterGather {
    engine: Arc<CachedEngine<ShardedWrapper>>,
}

impl ScatterGather {
    /// Shard `db` and serve it.
    pub fn new(
        db: &Database,
        shard: &ShardConfig,
        config: QuestConfig,
    ) -> Result<ScatterGather, ShardError> {
        Self::from_store(ShardedStore::from_database(db, shard)?, config)
    }

    /// Serve an existing sharded store with default cache sizing.
    pub fn from_store(
        store: ShardedStore,
        config: QuestConfig,
    ) -> Result<ScatterGather, ShardError> {
        Self::from_store_with(store, config, CacheConfig::default())
    }

    /// Serve an existing sharded store with explicit cache sizing.
    pub fn from_store_with(
        store: ShardedStore,
        mut config: QuestConfig,
        caches: CacheConfig,
    ) -> Result<ScatterGather, ShardError> {
        // Keep the engine config's shard knob in sync with the actual
        // partitioning, so config introspection and ServeStats agree.
        config.shard_count = store.shard_count();
        let engine = Quest::new(ShardedWrapper::new(store), config)?;
        Ok(ScatterGather {
            engine: Arc::new(CachedEngine::with_caches(engine, caches)),
        })
    }

    /// Run one keyword search.
    pub fn search(&self, raw_query: &str) -> Result<SearchOutcome, QuestError> {
        self.engine.search(raw_query)
    }

    /// Apply a mutation batch (per-record accept/reject, epoch bump on any
    /// application — identical contract to the unsharded serving layer).
    pub fn apply(&self, changes: &[ChangeRecord]) -> Result<ApplyReport, ServeError> {
        self.engine.apply(changes)
    }

    /// Serving counters; `stats().shards` reports the shard count.
    pub fn stats(&self) -> ServeStats {
        self.engine.stats()
    }

    /// The underlying cached engine (shareable across threads; pass clones
    /// of the `Arc` to a [`QueryService`](quest_serve::QueryService)).
    pub fn engine(&self) -> &Arc<CachedEngine<ShardedWrapper>> {
        &self.engine
    }

    /// Number of shards behind the engine.
    pub fn shard_count(&self) -> usize {
        self.engine.engine().wrapper().shard_count()
    }
}
