//! # quest-shard — horizontal sharding with bit-identical scatter-gather
//!
//! Partitions a `relstore` database into N shards by a hash of each row's
//! primary key, runs QUEST's forward pass per shard, and merges per-shard
//! score and statistics state so that the final ranking is **bit-identical**
//! to the unsharded engine — same SQL text, same score bits, same order.
//!
//! The layers, bottom up:
//!
//! * [`Partitioner`] — stable PK-hash routing (FNV-1a over a canonical
//!   value encoding that mirrors `Value`'s equality, so a row's shard never
//!   depends on *how* its key is spelled).
//! * [`ShardedStore`] — N FK-less shard [`Database`](relstore::Database)s
//!   behind one full catalog. Mutations route by PK hash and reproduce the
//!   unsharded database's check order and error strings; referential
//!   integrity is enforced *globally* by the store (shard catalogs carry no
//!   foreign keys, so a shard never rejects a cross-shard reference).
//!   Scores and statistics merge through the mergeable-accumulator APIs of
//!   `relstore` ([`ScoreAccumulator`](relstore::index::ScoreAccumulator),
//!   [`AttributeStatsAccumulator`](relstore::stats::AttributeStatsAccumulator),
//!   [`JoinStatsAccumulator`](relstore::stats::JoinStatsAccumulator)):
//!   integer state (df, doc counts, lengths) sums across shards, and every
//!   floating-point expression is evaluated **once** from the merged
//!   integers — which is what makes the merge exact rather than
//!   approximately associative.
//! * [`ShardedWrapper`] / [`ScatterGather`] — a
//!   [`SourceWrapper`](quest_core::SourceWrapper) over the store plus a
//!   cached serving engine. One scatter per keyword precomputes the whole
//!   per-attribute score table, so the engine's emission pass never fans
//!   out per `(keyword, attribute)` pair.
//! * [`ShardedPrimary`] — a shard is the unit of replication: each shard
//!   commits through its own [`Primary`](quest_replica::Primary) (own WAL,
//!   own snapshots), a router fans accepted records out by partition key,
//!   and a shard that fails a commit is fenced in the topology — queries
//!   against a set with a broken shard return a typed
//!   [`ShardError::ShardDown`], never silently partial results.
//!
//! The identity discipline is pinned end to end by `tests/shard.rs` (the
//! repo-level shard identity suite) and by this crate's partitioner
//! property suite.

#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod partition;
pub mod scatter;
pub mod store;
pub mod topology;
pub mod wrapper;

pub use config::{ShardConfig, MAX_SHARD_COUNT};
pub use error::ShardError;
pub use partition::{partition_key, Partitioner};
pub use scatter::ScatterGather;
pub use store::ShardedStore;
pub use topology::{ShardReceipt, ShardTopology, ShardedPrimary};
pub use wrapper::ShardedWrapper;

/// The shard layer's metric names in the [`quest_obs::global`] registry.
pub mod names {
    /// Per-shard wall time inside one keyword scatter
    /// (`quest_shard_scatter_ns{shard="<i>"}`; histogram, nanoseconds).
    pub const SCATTER: &str = "quest_shard_scatter_ns";
    /// Fan-out imbalance of the latest scatter: how far the busiest shard
    /// ran over the mean, in whole percent (gauge; 0 = perfectly even).
    pub const FANOUT_IMBALANCE: &str = "quest_shard_fanout_imbalance_pct";
    /// Per-shard probes a keyword scatter issued — every `(attribute,
    /// shard)` pair fanned out to, whether or not it matched (counter; the
    /// numerator of the scatter read-amplification ratio).
    pub const SCATTER_PROBES: &str = "quest_shard_scatter_probes_total";
    /// Scatter results the gather actually used: attribute slots whose
    /// merged score came back nonzero (counter; the denominator of the
    /// scatter read-amplification ratio).
    pub const SCATTER_USED: &str = "quest_shard_scatter_results_used_total";
    /// Searches or commits refused because a shard was fenced (counter).
    pub const DOWN: &str = "quest_shard_down_total";
    /// Shards fenced — by a failed commit, a divergent copy, or an
    /// operator (counter).
    pub const FENCE: &str = "quest_shard_fence_total";
}
