//! Stable primary-key-hash routing.
//!
//! A row's shard is a pure function of its primary-key *values* — never of
//! insertion order, tombstones, or compaction history — so placement is
//! stable across any interleaving of mutations (pinned by the partitioner
//! property suite in `tests/partition_properties.rs`).

use relstore::{Catalog, Row, TableData, TableId, Value};

use crate::config::ShardConfig;
use crate::error::ShardError;

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Hash a primary-key tuple to a stable 64-bit partition key.
///
/// The encoding mirrors `Value`'s `Hash`/`Eq` canonicalization: `Int` is
/// encoded as the bit pattern of its `f64` value, exactly like `Float`, so
/// two keys that compare **equal** under `Value` semantics (`Int(1) ==
/// Float(1.0)`) always hash — and therefore route — identically. Distinct
/// values may collide (that only co-locates unrelated rows, which is
/// harmless); equal values may not diverge (that would split one logical
/// row identity across shards).
pub fn partition_key(key: &[Value]) -> u64 {
    let mut h = Fnv::new();
    for v in key {
        match v {
            Value::Null => h.write(&[0]),
            Value::Bool(b) => {
                h.write(&[1, *b as u8]);
            }
            Value::Int(i) => {
                h.write(&[2]);
                h.write(&(*i as f64).to_bits().to_le_bytes());
            }
            Value::Float(f) => {
                h.write(&[2]);
                h.write(&f.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                h.write(&[3]);
                h.write(&(s.len() as u64).to_le_bytes());
                h.write(s.as_bytes());
            }
            Value::Date(d) => {
                h.write(&[4]);
                h.write(&d.year.to_le_bytes());
                h.write(&[d.month, d.day]);
            }
        }
    }
    h.0
}

/// Routes rows to shards by primary-key hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    shards: u64,
}

impl Partitioner {
    /// Build a partitioner over `config.shard_count` shards.
    pub fn new(config: &ShardConfig) -> Result<Partitioner, ShardError> {
        config.validate()?;
        Ok(Partitioner {
            shards: config.shard_count as u64,
        })
    }

    /// Number of shards routed over.
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning a primary-key tuple.
    pub fn shard_of_key(&self, key: &[Value]) -> usize {
        (partition_key(key) % self.shards) as usize
    }

    /// The shard owning a full row of `table`.
    pub fn shard_of_row(&self, catalog: &Catalog, table: TableId, row: &Row) -> usize {
        let schema = catalog.table(table);
        self.shard_of_key(&TableData::pk_of(catalog, schema, row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Date;

    #[test]
    fn equal_values_route_identically() {
        // Int and Float that compare equal must land on the same shard.
        for n in [1i64, 0, -7, 1 << 40] {
            assert_eq!(
                partition_key(&[Value::Int(n)]),
                partition_key(&[Value::Float(n as f64)])
            );
        }
    }

    #[test]
    fn encoding_distinguishes_tuple_shapes() {
        // The length prefix keeps multi-value tuples unambiguous.
        assert_ne!(
            partition_key(&[Value::Text("ab".into()), Value::Text("c".into())]),
            partition_key(&[Value::Text("a".into()), Value::Text("bc".into())])
        );
        assert_ne!(
            partition_key(&[Value::Null]),
            partition_key(&[Value::Bool(false)])
        );
        assert_ne!(
            partition_key(&[Value::Date(Date::new(2001, 2, 3).unwrap())]),
            partition_key(&[Value::Date(Date::new(2001, 3, 2).unwrap())])
        );
    }

    #[test]
    fn shard_of_key_stays_in_range() {
        let p = Partitioner::new(&ShardConfig::new(7)).unwrap();
        for i in 0..500i64 {
            assert!(p.shard_of_key(&[Value::Int(i)]) < 7);
        }
    }
}
