//! [`ShardedWrapper`]: the engine's view of a sharded store.

use std::sync::Arc;

use quest_core::{Keyword, MiniOntology, PreparedKeyword, SourceWrapper};
use quest_serve::{ApplyReport, MutableSource};
use quest_wal::ChangeRecord;
use relstore::index::KeywordProbe;
use relstore::sql::{ResultSet, SelectStatement};
use relstore::{AttrId, Catalog, Database, ForeignKey, StoreError, TableId};

use crate::config::ShardConfig;
use crate::error::ShardError;
use crate::store::ShardedStore;

/// A [`SourceWrapper`] over a [`ShardedStore`]: the engine sees one full
/// catalog and one search function, and every answer is bit-identical to
/// [`FullAccessWrapper`](quest_core::FullAccessWrapper) over the unsharded
/// union of the shards.
///
/// The one structural difference from the unsharded wrapper is keyword
/// preparation: instead of attaching an index probe and scoring per
/// attribute on demand, preparation runs **one scatter per keyword** that
/// fills the whole per-attribute score table
/// ([`ShardedStore::scatter_value_scores`]). The emission pass then reads a
/// table slot per `(keyword, attribute)` pair — the per-shard fan-out cost
/// is paid once per keyword, not once per attribute.
#[derive(Debug)]
pub struct ShardedWrapper {
    store: ShardedStore,
    ontology: MiniOntology,
}

impl ShardedWrapper {
    /// Wrap a sharded store.
    pub fn new(store: ShardedStore) -> ShardedWrapper {
        ShardedWrapper {
            store,
            ontology: MiniOntology::builtin(),
        }
    }

    /// Shard an existing database and wrap the result.
    pub fn from_database(
        db: &Database,
        config: &ShardConfig,
    ) -> Result<ShardedWrapper, ShardError> {
        Ok(ShardedWrapper::new(ShardedStore::from_database(
            db, config,
        )?))
    }

    /// Replace the ontology.
    pub fn with_ontology(mut self, ontology: MiniOntology) -> ShardedWrapper {
        self.ontology = ontology;
        self
    }

    /// The wrapped store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Mutable access to the wrapped store, for live-data mutation. As with
    /// the unsharded wrapper, an engine built over this caches
    /// instance-derived state — mutate through the serving layer's `apply`
    /// (or call `Quest::resync` yourself) to keep it coherent.
    pub fn store_mut(&mut self) -> &mut ShardedStore {
        &mut self.store
    }
}

impl SourceWrapper for ShardedWrapper {
    fn catalog(&self) -> &Catalog {
        self.store.catalog()
    }

    fn value_score(&self, attr: AttrId, keyword: &Keyword) -> f64 {
        self.store.search_score(attr, &keyword.normalized)
    }

    fn prepare_keyword(&self, keyword: &Keyword) -> PreparedKeyword {
        // Scatter-probe failpoint: an in-memory table scan cannot fail, so
        // only `SlowIo` is honored here (`stall` is a no-op for every other
        // kind). Results are bit-identical with or without an armed plan.
        if let Some(fault) = quest_fault::fire(quest_fault::sites::SHARD_PROBE) {
            fault.stall();
        }
        let scores = match KeywordProbe::new(&keyword.normalized) {
            Some(probe) => self.store.scatter_value_scores(&probe),
            // Normalized away: every score is 0. An empty table makes every
            // lookup fall back to 0.0 without allocating per attribute.
            None => Vec::new(),
        };
        PreparedKeyword::with_value_scores(keyword.clone(), Arc::new(scores))
    }

    fn value_score_prepared(&self, attr: AttrId, prepared: &PreparedKeyword) -> f64 {
        match prepared.value_scores() {
            Some(table) => table.get(attr.0 as usize).copied().unwrap_or(0.0),
            None => self.value_score(attr, prepared.keyword()),
        }
    }

    fn join_informativeness(&self, fk: ForeignKey) -> Option<f64> {
        self.store.fk_stats(fk).map(|s| s.nmi)
    }

    fn execute(&self, stmt: &SelectStatement) -> Result<ResultSet, StoreError> {
        self.store.execute(stmt)
    }

    fn has_results(&self, stmt: &SelectStatement) -> Result<bool, StoreError> {
        self.store.has_results(stmt)
    }

    fn has_instance_access(&self) -> bool {
        true
    }

    fn table_rows(&self, table: TableId) -> Option<u64> {
        Some(self.store.row_count(table) as u64)
    }

    fn ontology(&self) -> &MiniOntology {
        &self.ontology
    }

    fn shard_count(&self) -> usize {
        self.store.shard_count()
    }
}

impl MutableSource for ShardedWrapper {
    fn apply_changes(&mut self, changes: &[ChangeRecord], report: &mut ApplyReport) {
        self.store.apply_changes(changes, report);
    }
}
