//! The crate's error type.

use std::fmt;

use quest_core::QuestError;
use quest_replica::ReplicaError;
use quest_serve::ServeError;
use relstore::StoreError;

/// Anything that can go wrong inside the sharding layer.
#[derive(Debug)]
pub enum ShardError {
    /// Invalid shard configuration (count out of range, mismatched reopen).
    Config(String),
    /// A storage-level rejection surfaced by a shard or a global check.
    Store(StoreError),
    /// The engine rejected or failed a search.
    Engine(QuestError),
    /// The serving layer failed to apply a batch or re-sync.
    Serve(ServeError),
    /// A per-shard replication primitive (WAL, snapshot, recovery) failed.
    Replica(ReplicaError),
    /// A row was found on a shard its primary key does not hash to.
    Placement(String),
    /// Shard recovery could not verify the healed shard (replayed LSN
    /// outside the fence window, pending records re-rejected, watermark
    /// mismatch) — or the shard's copy diverged from the gateway's global
    /// decision. The shard stays fenced.
    Recovery(String),
    /// A shard is fenced: it failed a commit (or an operator fenced it) and
    /// the set refuses to serve queries or writes until it is repaired —
    /// a typed refusal instead of silently partial results.
    ShardDown {
        /// Index of the broken shard.
        shard: usize,
        /// Why it was fenced.
        reason: String,
    },
}

impl ShardError {
    /// Whether a retry can be expected to succeed. Only interrupted-style
    /// I/O surfaced through the replica layer qualifies
    /// ([`ReplicaError::is_transient`]); config, placement, and fence
    /// refusals are deterministic.
    pub fn is_transient(&self) -> bool {
        match self {
            ShardError::Replica(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Config(m) => write!(f, "shard config: {m}"),
            ShardError::Store(e) => write!(f, "store: {e}"),
            ShardError::Engine(e) => write!(f, "engine: {e}"),
            ShardError::Serve(e) => write!(f, "serve: {e}"),
            ShardError::Replica(e) => write!(f, "replica: {e}"),
            ShardError::Placement(m) => write!(f, "placement: {m}"),
            ShardError::Recovery(m) => write!(f, "recovery: {m}"),
            ShardError::ShardDown { shard, reason } => {
                write!(f, "shard {shard} is down: {reason}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<StoreError> for ShardError {
    fn from(e: StoreError) -> ShardError {
        ShardError::Store(e)
    }
}

impl From<QuestError> for ShardError {
    fn from(e: QuestError) -> ShardError {
        ShardError::Engine(e)
    }
}

impl From<ServeError> for ShardError {
    fn from(e: ServeError) -> ShardError {
        ShardError::Serve(e)
    }
}

impl From<ReplicaError> for ShardError {
    fn from(e: ReplicaError) -> ShardError {
        ShardError::Replica(e)
    }
}
