//! Criterion bench — experiments E3/E6: top-k Steiner enumeration on the
//! three schema graphs, vs the instance-graph build cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quest_bench::Dataset;
use quest_core::backward::{BackwardModule, SchemaGraphWeights};
use quest_core::baseline::InstanceGraph;
use quest_core::{FullAccessWrapper, SourceWrapper};

fn bench_schema_steiner(c: &mut Criterion) {
    let mut g = c.benchmark_group("schema_steiner_top5");
    for ds in Dataset::ALL {
        let db = ds.generate_default();
        let w = FullAccessWrapper::new(db);
        let backward = BackwardModule::new(&w, &SchemaGraphWeights::default());
        // Terminals: the first two text attributes of different tables.
        let catalog = w.catalog();
        let mut attrs = Vec::new();
        let mut seen_tables = std::collections::HashSet::new();
        for a in catalog.attributes() {
            if a.full_text && seen_tables.insert(a.table) {
                attrs.push(a.id);
            }
            if attrs.len() == 3 {
                break;
            }
        }
        g.bench_with_input(
            BenchmarkId::new("dataset", ds.name()),
            &attrs,
            |b, attrs| {
                b.iter(|| backward.interpretations_for_attrs(std::hint::black_box(attrs), 5))
            },
        );
    }
    g.finish();
}

fn bench_instance_graph_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("instance_graph_build");
    g.sample_size(10);
    for movies in [1_000usize, 5_000] {
        let db = quest_data::imdb::generate(&quest_data::imdb::ImdbScale { movies, seed: 42 })
            .expect("generate");
        g.bench_with_input(BenchmarkId::new("movies", movies), &db, |b, db| {
            b.iter(|| InstanceGraph::build(std::hint::black_box(db)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schema_steiner, bench_instance_graph_build);
criterion_main!(benches);
