//! Criterion bench — serving throughput: the serial engine vs the
//! `quest-serve` pool at growing worker counts, on the IMDB workload stream
//! (cache warm, the steady state of a long-running service).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quest_bench::{engine_for, shuffled_stream, Dataset};
use quest_serve::{CachedEngine, QueryService};

fn bench_serial_vs_workers(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_throughput_imdb");
    g.sample_size(10);
    // The workload repeated 8x in a shuffled order, so each worker gets
    // enough jobs and repeats are spread out.
    let queries = shuffled_stream(&Dataset::Imdb.workload(), 8, 42);

    let engine = engine_for(Dataset::Imdb);
    g.bench_function("serial_uncached", |b| {
        b.iter(|| {
            for q in &queries {
                let _ = engine.search(std::hint::black_box(q));
            }
        })
    });

    for workers in [1usize, 2, 4] {
        let service = QueryService::new(CachedEngine::new(engine.clone()), workers);
        // Warm the caches once so the measurement is the steady state.
        for t in service.submit_batch(&queries) {
            let _ = t.wait();
        }
        g.bench_with_input(
            BenchmarkId::new("workers_warm", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    for t in service.submit_batch(std::hint::black_box(&queries)) {
                        let _ = t.wait();
                    }
                })
            },
        );
        service.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_serial_vs_workers);
criterion_main!(benches);
