//! Criterion bench — the live-data path: mutation batches applied through
//! the serving layer (checked mutations + incremental index maintenance +
//! engine re-sync + cache purge), and warm query latency right after a
//! mutation retires the caches.

use std::cell::Cell;

use criterion::{criterion_group, criterion_main, Criterion};
use quest_bench::{engine_for, Dataset};
use quest_serve::CachedEngine;
use quest_wal::ChangeRecord;

/// Mutation batches need fresh primary keys each iteration; a bumping
/// counter keeps them unique across criterion's warmup and sampling.
fn next_ids(counter: &Cell<i64>) -> (i64, i64) {
    let base = counter.get();
    counter.set(base + 2);
    (base, base + 1)
}

fn bench_mutation_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("live_update_imdb");
    g.sample_size(10);

    let cached = CachedEngine::new(engine_for(Dataset::Imdb));
    let counter = Cell::new(600_000i64);
    g.bench_function("apply_insert_pair_batch", |b| {
        b.iter(|| {
            let (person_id, movie_id) = next_ids(&counter);
            let batch = vec![
                ChangeRecord::Insert {
                    table: "person".into(),
                    row: vec![person_id.into(), "Bench Director".into(), 1970.into()],
                },
                ChangeRecord::Insert {
                    table: "movie".into(),
                    row: vec![
                        movie_id.into(),
                        "Bench Premiere".into(),
                        2024.into(),
                        7.0.into(),
                        person_id.into(),
                    ],
                },
            ];
            cached.apply(std::hint::black_box(&batch)).expect("applies");
        })
    });

    // Queries right after a mutation: every iteration pays the epoch purge
    // and a cold forward/backward recompute for the probed keywords.
    let queries: Vec<String> = Dataset::Imdb
        .workload()
        .iter()
        .take(4)
        .map(|wq| wq.raw.clone())
        .collect();
    g.bench_function("requery_after_mutation", |b| {
        b.iter(|| {
            let (person_id, movie_id) = next_ids(&counter);
            let batch = vec![
                ChangeRecord::Insert {
                    table: "person".into(),
                    row: vec![person_id.into(), "Churn Director".into(), 1970.into()],
                },
                ChangeRecord::Insert {
                    table: "movie".into(),
                    row: vec![
                        movie_id.into(),
                        "Churn Feature".into(),
                        2024.into(),
                        6.5.into(),
                        person_id.into(),
                    ],
                },
            ];
            cached.apply(&batch).expect("applies");
            for q in &queries {
                let _ = cached.search(std::hint::black_box(q));
            }
        })
    });

    // Baseline for the same queries with no churn (warm caches).
    for q in &queries {
        let _ = cached.search(q);
    }
    g.bench_function("requery_static_warm", |b| {
        b.iter(|| {
            for q in &queries {
                let _ = cached.search(std::hint::black_box(q));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mutation_apply);
criterion_main!(benches);
