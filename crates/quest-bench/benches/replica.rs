//! Criterion bench — the replication path: positioned log tailing
//! (seek + poll vs. a whole-file read), the commit→ship→apply round trip,
//! and the router's per-query overhead on a warm replica tier.

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use quest_bench::{engine_for, Dataset};
use quest_core::QuestConfig;
use quest_replica::{Consistency, Primary, ReplicaSet, RoutingPolicy};
use quest_wal::{read_log, ChangeRecord, LogReader, WalWriter};
use relstore::{Catalog, DataType};

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("quest-replica-bench")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

/// Mutation batches need fresh primary keys each iteration; a bumping
/// counter keeps them unique across criterion's warmup and sampling.
fn next_ids(counter: &Cell<i64>) -> (i64, i64) {
    let base = counter.get();
    counter.set(base + 2);
    (base, base + 1)
}

fn insert_pair(person_id: i64, movie_id: i64) -> Vec<ChangeRecord> {
    vec![
        ChangeRecord::Insert {
            table: "person".into(),
            row: vec![person_id.into(), "Bench Director".into(), 1970.into()],
        },
        ChangeRecord::Insert {
            table: "movie".into(),
            row: vec![
                movie_id.into(),
                "Bench Premiere".into(),
                2024.into(),
                7.0.into(),
                person_id.into(),
            ],
        },
    ]
}

/// Seek + poll against a prebuilt log: the positioned bootstrap path a
/// replica takes from a snapshot, vs. decoding the whole file.
fn bench_log_tailing(c: &mut Criterion) {
    let mut g = c.benchmark_group("replica_log_tailing");
    g.sample_size(10);

    let dir = bench_dir("tailing");
    let mut catalog = Catalog::new();
    catalog
        .define_table("t")
        .unwrap()
        .pk("id", DataType::Int)
        .unwrap()
        .col("name", DataType::Text)
        .unwrap()
        .finish();
    let wal = dir.join("tail.wal");
    {
        let mut w = WalWriter::open(&wal, &catalog).expect("wal opens");
        for i in 0..4_000i64 {
            w.append(&ChangeRecord::Insert {
                table: "t".into(),
                row: vec![i.into(), format!("row {i}").into()],
            })
            .expect("append");
        }
    }

    g.bench_function("seek_3900_poll_tail", |b| {
        b.iter(|| {
            let mut r = LogReader::open(&wal, &catalog).expect("open");
            r.seek(3_900).expect("seek");
            let poll = r.poll().expect("poll");
            assert_eq!(std::hint::black_box(poll.records.len()), 100);
        })
    });
    g.bench_function("read_log_full_decode", |b| {
        b.iter(|| {
            let log = read_log(&wal, &catalog).expect("read");
            assert_eq!(std::hint::black_box(log.records.len()), 4_000);
        })
    });
    g.finish();
}

/// Commit at the primary, then ship-and-apply at a replica: the full
/// replication round trip for a two-record batch, and the router's
/// consistency-bounded query straight after.
fn bench_replication_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("replica_round_trip");
    g.sample_size(10);

    let dir = bench_dir("round-trip");
    let engine = engine_for(Dataset::Imdb);
    let db = engine.wrapper().database().clone();
    let primary = Arc::new(Primary::open(&dir, db, QuestConfig::default()).expect("primary"));
    let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
    let replica = set.spawn_replica("r1").expect("replica");
    let counter = Cell::new(700_000i64);

    g.bench_function("commit_sync_one_batch", |b| {
        b.iter(|| {
            let (person_id, movie_id) = next_ids(&counter);
            let receipt = primary
                .commit(&insert_pair(person_id, movie_id))
                .expect("commit");
            let report = replica.sync().expect("sync");
            assert_eq!(std::hint::black_box(report.lsn), receipt.last_lsn);
        })
    });

    // Warm the tier, then measure pure routing + cached-search overhead.
    let queries: Vec<String> = Dataset::Imdb
        .workload()
        .iter()
        .take(4)
        .map(|wq| wq.raw.clone())
        .collect();
    for q in &queries {
        let _ = set.query(q, Consistency::Eventual).expect("warm");
    }
    g.bench_function("routed_query_warm", |b| {
        b.iter(|| {
            for q in &queries {
                let routed = set.query(q, Consistency::Eventual).expect("routes");
                std::hint::black_box(routed.lsn);
            }
        })
    });
    g.bench_function("routed_query_read_your_writes", |b| {
        b.iter(|| {
            let bound = primary.last_lsn();
            for q in &queries {
                let routed = set.query(q, Consistency::AtLeast(bound)).expect("routes");
                assert!(std::hint::black_box(routed.lsn) >= bound);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_log_tailing, bench_replication_round_trip);
criterion_main!(benches);
