//! Criterion bench: Dempster-Shafer combination cost vs frame size and
//! number of focal sets (part of experiment E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quest_dst::{dempster_combine, Frame, MassFunction};

fn mass_with(frame: Frame, n_singletons: usize, uncertainty: f64) -> MassFunction {
    let mut m = MassFunction::new(frame);
    for i in 0..n_singletons {
        m.add_singleton(i, 1.0 + i as f64)
            .expect("singleton in frame");
    }
    m.set_uncertainty(uncertainty).expect("valid uncertainty");
    m
}

fn bench_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("dst_combine");
    for n in [4usize, 16, 64] {
        let frame = Frame::new(n).expect("frame");
        let m1 = mass_with(frame, n, 0.2);
        let m2 = mass_with(frame, n / 2, 0.4);
        g.bench_with_input(BenchmarkId::new("singletons", n), &n, |b, _| {
            b.iter(|| dempster_combine(std::hint::black_box(&m1), std::hint::black_box(&m2)))
        });
    }
    g.finish();
}

fn bench_pignistic(c: &mut Criterion) {
    let frame = Frame::new(64).expect("frame");
    let m = mass_with(frame, 64, 0.3);
    c.bench_function("dst_pignistic_64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..64 {
                acc += m.pignistic(std::hint::black_box(i)).expect("in frame");
            }
            acc
        })
    });
}

criterion_group!(benches, bench_combine, bench_pignistic);
criterion_main!(benches);
