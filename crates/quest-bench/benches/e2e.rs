//! Criterion bench — experiment E1's latency column: end-to-end search cost
//! on each dataset, and scaling on the IMDB shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quest_bench::{engine_for, Dataset};
use quest_core::{FullAccessWrapper, Quest, QuestConfig};
use quest_data::imdb::{self, ImdbScale};

fn bench_search_per_dataset(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_search");
    g.sample_size(20);
    for (ds, q) in [
        (Dataset::Imdb, "fleming wind"),
        (Dataset::Mondial, "po italy"),
        (Dataset::Dblp, "bergamaschi keyword"),
    ] {
        let engine = engine_for(ds);
        g.bench_with_input(BenchmarkId::new("dataset", ds.name()), &q, |b, q| {
            b.iter(|| engine.search(std::hint::black_box(q)).expect("search"))
        });
    }
    g.finish();
}

fn bench_search_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_scaling_imdb");
    g.sample_size(10);
    for movies in [500usize, 5_000, 25_000] {
        let db = imdb::generate(&ImdbScale { movies, seed: 42 }).expect("generate");
        let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
        g.bench_with_input(BenchmarkId::new("movies", movies), &movies, |b, _| {
            b.iter(|| {
                engine
                    .search(std::hint::black_box("leigh wind"))
                    .expect("search")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_search_per_dataset, bench_search_scaling);
criterion_main!(benches);
