//! Criterion bench — experiment E6: per-module cost of the Figure 1
//! pipeline pieces (list Viterbi, EM epoch, emission computation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quest_core::forward::ForwardModule;
use quest_core::semantics::SemanticRules;
use quest_core::{FullAccessWrapper, KeywordQuery};
use quest_data::imdb::{self, ImdbScale};
use quest_hmm::{baum_welch_step, list_viterbi, Hmm};

fn wrapper() -> FullAccessWrapper {
    FullAccessWrapper::new(
        imdb::generate(&ImdbScale {
            movies: 1_000,
            seed: 42,
        })
        .expect("generate"),
    )
}

fn bench_list_viterbi(c: &mut Criterion) {
    let w = wrapper();
    let fwd = ForwardModule::new(&w, &SemanticRules::default()).expect("forward");
    let q = KeywordQuery::parse("leigh wind drama").expect("parse");
    let em = fwd.emissions(&w, &q);
    let mut g = c.benchmark_group("list_viterbi");
    for k in [1usize, 5, 20] {
        g.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                fwd.top_k_apriori(std::hint::black_box(&em), k)
                    .expect("decodes")
            })
        });
    }
    g.finish();
}

fn bench_emissions(c: &mut Criterion) {
    let w = wrapper();
    let fwd = ForwardModule::new(&w, &SemanticRules::default()).expect("forward");
    let q = KeywordQuery::parse("leigh wind drama").expect("parse");
    c.bench_function("emissions_3kw", |b| {
        b.iter(|| fwd.emissions(std::hint::black_box(&w), std::hint::black_box(&q)))
    });
}

fn bench_em_epoch(c: &mut Criterion) {
    // Synthetic 64-state HMM, 20 sequences of length 4.
    let n = 64usize;
    let hmm0 = Hmm::uniform(n).expect("model");
    let batch: Vec<Vec<Vec<f64>>> = (0..20)
        .map(|s| {
            (0..4)
                .map(|t| {
                    (0..n)
                        .map(|i| if (i + s + t) % 7 == 0 { 0.9 } else { 0.05 })
                        .collect()
                })
                .collect()
        })
        .collect();
    c.bench_function("baum_welch_epoch_64st", |b| {
        b.iter(|| {
            let mut m = hmm0.clone();
            baum_welch_step(&mut m, std::hint::black_box(&batch)).expect("em step")
        })
    });
}

fn bench_raw_list_viterbi(c: &mut Criterion) {
    // Pure HMM cost without the engine: 128 states, 5 observations.
    let n = 128usize;
    let hmm = Hmm::uniform(n).expect("model");
    let em: Vec<Vec<f64>> = (0..5)
        .map(|t| {
            (0..n)
                .map(|i| 1.0 / (1.0 + ((i * 7 + t * 13) % 97) as f64))
                .collect()
        })
        .collect();
    c.bench_function("raw_list_viterbi_128st_k10", |b| {
        b.iter(|| list_viterbi(&hmm, std::hint::black_box(&em), 10).expect("decodes"))
    });
}

criterion_group!(
    benches,
    bench_list_viterbi,
    bench_emissions,
    bench_em_epoch,
    bench_raw_list_viterbi
);
criterion_main!(benches);
