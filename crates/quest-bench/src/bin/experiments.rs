//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p quest-bench --bin experiments
//! [e1|e2|e3|e4|e5|e7|e8|e9|e10|e11|e12|e13|e14|all]`
//! (aliases: `serve-throughput` = e10, `live-update` = e11,
//! `replication` = e12, `sharding` = e13, `chaos` = e14)
//!
//! (E6 — per-module microbenches — lives in the criterion benches:
//! `cargo bench -p quest-bench`.)

use std::time::Duration;

use quest_bench::{engine_for, evaluate, fmt_dur, time, Dataset, Table};
use quest_core::backward::{BackwardModule, SchemaGraphWeights};
use quest_core::baseline::{banks_search, discover_statements, InstanceGraph};
use quest_core::eval::{aggregate, statements_equivalent};
use quest_core::forward::ForwardModule;
use quest_core::query_builder::build_query;
use quest_core::semantics::SemanticRules;
use quest_core::{
    AnnotationSet, Configuration, DeepWebWrapper, FullAccessWrapper, KeywordQuery, Quest,
    QuestConfig, SourceWrapper,
};
use quest_data::workload::WorkloadQuery;
use quest_data::{imdb, FeedbackOracle};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if which == "bench-json" || which == "--bench-json" {
        // The perf-trajectory artifact is a dedicated mode, not part of
        // "all": it writes a file (BENCH_pipeline.json by default) instead
        // of printing a table.
        let path = std::env::args()
            .nth(2)
            .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
        bench_json(&path);
        return;
    }
    let run = |name: &str| which == "all" || which == name;
    if run("e1") {
        e1_scaling();
    }
    if run("e2") {
        e2_module_comparison();
    }
    if run("e3") {
        e3_schema_vs_instance();
    }
    if run("e4") {
        e4_dst_sensitivity();
    }
    if run("e5") {
        e5_deep_web();
    }
    if run("e7") {
        e7_k_sweep();
    }
    if run("e8") {
        e8_mi_ablation();
    }
    if run("e9") {
        e9_rules_ablation();
    }
    if run("e10") || run("serve-throughput") {
        e10_serve_throughput();
    }
    if run("e11") || run("live-update") {
        e11_live_update();
    }
    if run("e12") || run("replication") {
        e12_replication();
    }
    if run("e13") || run("sharding") {
        e13_sharding();
    }
    if run("e14") || run("chaos") {
        e14_chaos();
    }
}

// ---------------------------------------------------------------- bench-json

/// Per-stage sample pools for one pipeline variant.
#[derive(Default)]
struct StageSamples {
    total: Vec<Duration>,
    emissions: Vec<Duration>,
    decode: Vec<Duration>,
    combine: Vec<Duration>,
    backward: Vec<Duration>,
}

impl StageSamples {
    fn record(&mut self, t: &quest_core::StageTimings) {
        self.total.push(t.total());
        self.emissions.push(t.emissions);
        self.decode.push(t.forward_apriori + t.forward_feedback);
        self.combine
            .push(t.combine_configs + t.combine_explanations);
        self.backward.push(t.backward);
    }

    fn to_json(&self) -> quest_bench::JsonObject {
        let stage = |s: &[Duration]| {
            quest_bench::JsonObject::new()
                .num("p50_us", quest_bench::percentile_us(s, 50.0))
                .num("p95_us", quest_bench::percentile_us(s, 95.0))
        };
        quest_bench::JsonObject::new()
            .obj("total", stage(&self.total))
            .obj("emissions", stage(&self.emissions))
            .obj("decode", stage(&self.decode))
            .obj("combine", stage(&self.combine))
            .obj("backward", stage(&self.backward))
    }
}

/// One stage histogram from the serve registry, rendered with exact
/// percentile bounds and its non-empty buckets. Histograms record
/// nanoseconds; the artifact stays in microseconds like every other
/// latency field.
fn histogram_json(h: &quest_obs::HistogramSnapshot) -> quest_bench::JsonObject {
    let us = |ns: u64| ns as f64 / 1e3;
    quest_bench::JsonObject::new()
        .num("count", h.count as f64)
        .num("p50_us", us(h.percentile(50.0)))
        .num("p95_us", us(h.percentile(95.0)))
        .num("p99_us", us(h.percentile(99.0)))
        .num("max_us", us(h.max))
        .arr(
            "nonzero_buckets",
            h.nonzero_buckets()
                .iter()
                .map(|(le, count)| {
                    quest_bench::JsonObject::new()
                        .num("le_us", us(*le))
                        .num("count", *count as f64)
                })
                .collect(),
        )
}

/// `experiments bench-json [path]` — the committed perf trajectory.
///
/// Measures the **uncached** single-query pipeline on the IMDB corpus —
/// no result caches anywhere: every query recomputes its forward and
/// backward stages — through two implementations of the identical
/// computation:
///
/// * **baseline** — the retained pre-optimization path
///   ([`Quest::search_query_reference`]): posting-list scans per probe,
///   per-probe keyword normalization and string matching, freshly
///   allocated unpruned list Viterbi, unmemoized Steiner enumeration;
/// * **optimized** — the hot path ([`Quest::search_query_with`]):
///   interned O(1) index probes, prepared keywords, memoized
///   metadata-similarity rows, scratch-reused pruned decoding, per-query
///   Steiner memo.
///
/// Optimized samples are split honestly: `optimized_first_pass` is the
/// first time the engine sees each query (per-keyword engine memos still
/// cold), `optimized` is the steady state (memos warm — the production
/// regime, since real streams repeat a small keyword vocabulary). The
/// ≥3x regression gate is on the steady state and says so in the
/// artifact.
///
/// Both paths produce bit-identical results (`tests/perf_identity.rs`);
/// this mode pins how much cheaper the optimized path is, per stage, plus
/// the serve-layer cold/warm serial/pooled throughput, so every future PR
/// has a measured baseline to defend.
fn bench_json(path: &str) {
    use quest_serve::{CachedEngine, QueryService};

    const REPS: usize = 25;
    const WORKERS: usize = 4;

    let ds = Dataset::Imdb;
    let db = ds.generate_default();
    let rows = db.total_rows();
    let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build");
    let workload = ds.workload();

    // Uncached single-query stage profile, baseline vs optimized,
    // interleaved per query so frequency effects hit both paths alike.
    // Rep 0 lands in the first-pass pool (engine keyword memos cold);
    // later reps are the steady state. The baseline path has no memos, so
    // its cost profile is the same in every rep.
    let mut baseline = StageSamples::default();
    let mut optimized = StageSamples::default();
    let mut optimized_first = StageSamples::default();
    let mut scratch = quest_core::SearchScratch::new();
    for rep in 0..REPS {
        for wq in &workload {
            let query = wq.parse();
            if let Ok(out) = engine.search_query_reference(&query) {
                baseline.record(&out.timings);
            }
            if let Ok(out) = engine.search_query_with(&query, &mut scratch) {
                if rep == 0 {
                    optimized_first.record(&out.timings);
                } else {
                    optimized.record(&out.timings);
                }
            }
        }
    }
    let speedup = |b: &[Duration], o: &[Duration]| {
        let b50 = quest_bench::percentile_us(b, 50.0);
        let o50 = quest_bench::percentile_us(o, 50.0);
        if o50 <= 0.0 {
            0.0
        } else {
            b50 / o50
        }
    };
    let total_speedup = speedup(&baseline.total, &optimized.total);
    let backward_speedup = speedup(&baseline.backward, &optimized.backward);

    // Serve layer: serial uncached engine vs the pooled cached service,
    // cold and warm passes over the repeated shuffled stream.
    let stream = quest_bench::shuffled_stream(&workload, REPS, 0x5EED_F00D_BE9C_0001);
    let n = stream.len();
    let (_, serial_wall) = time(|| {
        let mut scratch = quest_core::SearchScratch::new();
        for raw in &stream {
            let query = match KeywordQuery::parse(raw) {
                Ok(q) => q,
                Err(_) => continue,
            };
            let _ = engine.search_query_with(&query, &mut scratch);
        }
    });
    let qps = |d: Duration| n as f64 / d.as_secs_f64().max(1e-9);

    let service = QueryService::new(CachedEngine::new(engine.clone()), WORKERS);
    let (_, pooled_cold) = time(|| {
        for t in service.submit_batch(&stream) {
            let _ = t.wait();
        }
    });
    let (_, pooled_warm) = time(|| {
        for t in service.submit_batch(&stream) {
            let _ = t.wait();
        }
    });
    let stats = service.shutdown();

    let json = quest_bench::JsonObject::new()
        .obj(
            "meta",
            quest_bench::JsonObject::new()
                .str("dataset", "imdb")
                .num("rows", rows as f64)
                .num("distinct_queries", workload.len() as f64)
                .num("reps", REPS as f64)
                .str("units", "microseconds unless suffixed"),
        )
        .obj(
            "uncached_single_query",
            quest_bench::JsonObject::new()
                .str(
                    "note",
                    "no result caches; optimized = steady state (engine keyword \
memos warm), optimized_first_pass = first sight of each query; the >=3x \
gate is on the steady state",
                )
                .obj("baseline", baseline.to_json())
                .obj("optimized", optimized.to_json())
                .obj("optimized_first_pass", optimized_first.to_json())
                .num("speedup_total_p50", total_speedup)
                .num(
                    "speedup_first_pass_p50",
                    speedup(&baseline.total, &optimized_first.total),
                )
                .num(
                    "speedup_emissions_p50",
                    speedup(&baseline.emissions, &optimized.emissions),
                )
                .num(
                    "speedup_decode_p50",
                    speedup(&baseline.decode, &optimized.decode),
                )
                .num("speedup_backward_p50", backward_speedup),
        )
        .obj(
            "serve",
            quest_bench::JsonObject::new()
                .num("stream_len", n as f64)
                .num("serial_uncached_qps", qps(serial_wall))
                .arr(
                    "pooled",
                    vec![quest_bench::JsonObject::new()
                        .num("workers", WORKERS as f64)
                        .num("cold_qps", qps(pooled_cold))
                        .num("warm_qps", qps(pooled_warm))
                        .num("forward_hit_rate", stats.forward_cache.hit_rate())
                        .num("backward_hit_rate", stats.backward_cache.hit_rate())],
                )
                .obj(
                    "stage_totals_ms",
                    quest_bench::JsonObject::new()
                        .num("forward", stats.stages.forward.as_secs_f64() * 1e3)
                        .num("backward", stats.stages.backward.as_secs_f64() * 1e3)
                        .num("assemble", stats.stages.assemble.as_secs_f64() * 1e3)
                        .num("emissions", stats.stages.emissions.as_secs_f64() * 1e3)
                        .num("decode", stats.stages.decode.as_secs_f64() * 1e3)
                        .num("uncached_forward", stats.stages.uncached_forward as f64),
                )
                .obj("stage_histograms", {
                    // Full distributions from the serve registry: tail
                    // behaviour (p99, exact max, bucket shape) the p50/p95
                    // pairs above cannot carry.
                    let mut hists = quest_bench::JsonObject::new().str(
                        "note",
                        "per-request stage distributions over the pooled cold+warm \
streams, from the serve metrics registry; bucket bounds are inclusive upper \
edges of log-spaced bins",
                    );
                    for (key, name) in [
                        ("total", quest_serve::names::LATENCY),
                        ("forward", quest_serve::names::STAGE_FORWARD),
                        ("backward", quest_serve::names::STAGE_BACKWARD),
                        ("assemble", quest_serve::names::STAGE_ASSEMBLE),
                        ("emissions", quest_serve::names::STAGE_EMISSIONS),
                        ("decode", quest_serve::names::STAGE_DECODE),
                        ("combine", quest_serve::names::STAGE_COMBINE),
                    ] {
                        if let Some(h) = stats.metrics.histogram(name) {
                            hists = hists.obj(key, histogram_json(h));
                        }
                    }
                    hists
                }),
        );

    // E13 companion: the shard-count sweep, with its identity gate. Fewer
    // reps than the standalone experiment — the artifact needs the shape
    // of the curve and the gate, not tight confidence intervals.
    let shard_points = shard_sweep(&[1, 2, 4, 8, 16], 3);
    assert!(
        shard_points.iter().all(|p| p.identical),
        "perf artifact refused: a sharded configuration diverged from the unsharded engine"
    );
    let json = json.obj(
        "shard_sweep",
        quest_bench::JsonObject::new()
            .str(
                "note",
                "scatter-gather over N hash shards; every point passed the bit-identity \
gate (full-workload SQL + score bits equal to the unsharded engine, pristine and after \
a routed mutation burst); reads are the uncached pipeline path",
            )
            .arr(
                "sweep",
                shard_points
                    .iter()
                    .map(|p| {
                        quest_bench::JsonObject::new()
                            .num("shards", p.shards as f64)
                            .num("build_ms", p.build.as_secs_f64() * 1e3)
                            .num("read_p50_us", p.search_p50_us)
                            .num("read_qps", p.search_qps)
                            .num("write_qps", p.write_qps)
                            .num("identity", if p.identical { 1.0 } else { 0.0 })
                    })
                    .collect(),
            ),
    );

    // Amplification accounting: physical work per unit of logical work,
    // read from the process-wide registry. The shard sweep above already
    // generated the scatter traffic; a dedicated replication exercise (one
    // primary, two replicas tailing the same log) produces the WAL and
    // replica volumes.
    {
        use quest_replica::{Primary, ReplicaSet, RoutingPolicy};
        use quest_wal::ChangeRecord;
        use std::sync::Arc;

        let amp_dir = std::env::temp_dir().join(format!("quest-bench-amp-{}", std::process::id()));
        std::fs::remove_dir_all(&amp_dir).ok();
        let primary = Arc::new(
            Primary::open(&amp_dir, ds.generate_default(), QuestConfig::default())
                .expect("amplification primary"),
        );
        let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
        for i in 0..2 {
            set.spawn_replica(&format!("amp-r{i}"))
                .expect("amplification replica");
        }
        for round in 0..8i64 {
            let person_id = 830_000 + 2 * round;
            primary
                .commit(&[
                    ChangeRecord::Insert {
                        table: "person".into(),
                        row: vec![
                            person_id.into(),
                            format!("Amplified Director {round}").into(),
                            1970.into(),
                        ],
                    },
                    ChangeRecord::Insert {
                        table: "movie".into(),
                        row: vec![
                            (person_id + 1).into(),
                            format!("Amplified Release {round}").into(),
                            2024.into(),
                            7.5.into(),
                            person_id.into(),
                        ],
                    },
                ])
                .expect("amplification commit");
            set.sync_all().expect("amplification sync");
        }
        primary.sync().expect("amplification fsync");
        drop(set);
        drop(primary);
        std::fs::remove_dir_all(&amp_dir).ok();
    }
    let global = quest_obs::global().snapshot();
    let counter = |name: &str| global.counter(name).unwrap_or(0) as f64;
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let wal_logical = counter(quest_wal::names::LOGICAL_BYTES);
    let wal_physical = counter(quest_wal::names::PHYSICAL_BYTES);
    let committed = counter(quest_replica::names::RECORDS_COMMITTED);
    let applied = counter(quest_replica::names::RECORDS_APPLIED);
    let probes = counter(quest_shard::names::SCATTER_PROBES);
    let used = counter(quest_shard::names::SCATTER_USED);
    let json = json.obj(
        "amplification",
        quest_bench::JsonObject::new()
            .str(
                "note",
                "process-wide physical-vs-logical volume ratios: WAL bytes from the \
replication exercise (2 tailing replicas), replica records applied vs committed \
(~replica count), shard scatter probes issued vs nonzero results used (from the \
shard sweep's read bursts)",
            )
            .obj(
                "wal",
                quest_bench::JsonObject::new()
                    .num("logical_bytes", wal_logical)
                    .num("physical_bytes", wal_physical)
                    .num("write_amplification", ratio(wal_physical, wal_logical)),
            )
            .obj(
                "replica",
                quest_bench::JsonObject::new()
                    .num("records_committed", committed)
                    .num("records_applied", applied)
                    .num("apply_ratio", ratio(applied, committed)),
            )
            .obj(
                "shard",
                quest_bench::JsonObject::new()
                    .num("scatter_probes", probes)
                    .num("results_used", used)
                    .num("read_amplification", ratio(probes, used)),
            ),
    );

    std::fs::write(path, json.render_pretty()).expect("write benchmark artifact");
    println!(
        "wrote {path}: uncached single-query speedup {total_speedup:.2}x steady / {:.2}x first pass \
         (baseline p50 {:.1}us -> optimized p50 {:.1}us), backward stage {backward_speedup:.2}x \
         (p50 {:.1}us -> {:.1}us), pooled warm {:.0} qps",
        speedup(&baseline.total, &optimized_first.total),
        quest_bench::percentile_us(&baseline.total, 50.0),
        quest_bench::percentile_us(&optimized.total, 50.0),
        quest_bench::percentile_us(&baseline.backward, 50.0),
        quest_bench::percentile_us(&optimized.backward, 50.0),
        qps(pooled_warm)
    );
    // The default floor (3x) is for artifact regeneration on a quiet
    // machine; CI overrides it down via QUEST_BENCH_MIN_SPEEDUP because a
    // shared runner's microsecond-scale p50s are noisy — the gate should
    // catch a real regression of a ~4.7x path, not neighbor load.
    let min_speedup: f64 = std::env::var("QUEST_BENCH_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    assert!(
        total_speedup >= min_speedup,
        "perf regression: steady-state uncached single-query speedup \
         {total_speedup:.2}x < {min_speedup}x floor"
    );
    // Per-stage floor for the backward rebuild (join-template memo + flat
    // Steiner scratch + admissible prune). Same philosophy: the default
    // (2x) is for quiet-machine artifact regeneration, CI overrides down
    // via QUEST_BENCH_MIN_BACKWARD_SPEEDUP to absorb runner noise.
    let min_backward: f64 = std::env::var("QUEST_BENCH_MIN_BACKWARD_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    assert!(
        backward_speedup >= min_backward,
        "perf regression: steady-state backward-stage speedup \
         {backward_speedup:.2}x < {min_backward}x floor"
    );
}

// ---------------------------------------------------------------- E13

/// One measured point of the shard-count sweep.
struct ShardPoint {
    shards: usize,
    build: Duration,
    search_p50_us: f64,
    search_qps: f64,
    write_qps: f64,
    identical: bool,
}

/// Deterministic write rounds for the sweep: each inserts a fresh
/// person + movie (the movie referencing the person, so routing must
/// satisfy a cross-shard FK check) and retires the previous round's movie.
fn shard_write_batches() -> Vec<Vec<quest_wal::ChangeRecord>> {
    use quest_wal::ChangeRecord;
    (0..6i64)
        .map(|round| {
            let person_id = 830_000 + 2 * round;
            let movie_id = person_id + 1;
            let mut batch = vec![
                ChangeRecord::Insert {
                    table: "person".into(),
                    row: vec![
                        person_id.into(),
                        format!("Sharded Director {round}").into(),
                        1970.into(),
                    ],
                },
                ChangeRecord::Insert {
                    table: "movie".into(),
                    row: vec![
                        movie_id.into(),
                        format!("Sharded Release {round}").into(),
                        2024.into(),
                        7.5.into(),
                        person_id.into(),
                    ],
                },
            ];
            if round > 0 {
                batch.push(ChangeRecord::Delete {
                    table: "movie".into(),
                    key: vec![(movie_id - 2).into()],
                });
            }
            batch
        })
        .collect()
}

/// Bit-exact (SQL text, score bits) fingerprints over the workload.
fn shard_prints(
    workload: &[WorkloadQuery],
    catalog: &relstore::Catalog,
    search: impl Fn(&str) -> Option<quest_core::SearchOutcome>,
) -> Vec<Vec<(String, u64)>> {
    workload
        .iter()
        .map(|wq| match search(&wq.raw) {
            Some(out) => out
                .explanations
                .iter()
                .map(|e| (e.sql(catalog), e.score.to_bits()))
                .collect(),
            None => Vec::new(),
        })
        .collect()
}

/// Measure the sweep: per shard count, gather build time, the **uncached**
/// pipeline read p50/throughput (`search_query_with`, no result caches —
/// repeated streams would otherwise collapse every shard count to a cache
/// hit), the routed write throughput, and the identity verdict against the
/// unsharded engine before *and* after the write rounds.
fn shard_sweep(shard_counts: &[usize], reps: usize) -> Vec<ShardPoint> {
    use quest_serve::CachedEngine;
    use quest_shard::{ScatterGather, ShardConfig};

    let ds = Dataset::Imdb;
    let db = ds.generate_default();
    let workload = ds.workload();
    let queries: Vec<KeywordQuery> = workload.iter().map(|wq| wq.parse()).collect();
    let batches = shard_write_batches();
    let writes: usize = batches.iter().map(Vec::len).sum();

    // Unsharded reference fingerprints, pristine and post-mutation.
    let whole = CachedEngine::new(
        Quest::new(FullAccessWrapper::new(db.clone()), QuestConfig::default()).expect("build"),
    );
    let before = shard_prints(&workload, db.catalog(), |raw| whole.search(raw).ok());
    for batch in &batches {
        let report = whole.apply(batch).expect("unsharded apply");
        assert!(report.all_applied(), "write rounds are designed to apply");
    }
    let after = shard_prints(&workload, db.catalog(), |raw| whole.search(raw).ok());

    shard_counts
        .iter()
        .map(|&n| {
            let config = ShardConfig {
                shard_count: n,
                parallel: true,
            };
            let (gather, build) = time(|| {
                ScatterGather::new(&db, &config, QuestConfig::default()).expect("gather builds")
            });
            let mut identical =
                shard_prints(&workload, db.catalog(), |raw| gather.search(raw).ok()) == before;

            // Uncached pipeline reads: per-query timings, p50 over all reps.
            let mut samples = Vec::with_capacity(reps * queries.len());
            let mut scratch = quest_core::SearchScratch::new();
            let (_, read_wall) = time(|| {
                for _ in 0..reps {
                    for query in &queries {
                        let (_, d) = time(|| {
                            let engine = gather.engine().engine();
                            let _ = engine.search_query_with(query, &mut scratch);
                        });
                        samples.push(d);
                    }
                }
            });

            // Routed writes through the serving layer.
            let (_, write_wall) = time(|| {
                for batch in &batches {
                    let report = gather.apply(batch).expect("sharded apply");
                    assert!(report.all_applied(), "sharded write rounds all apply");
                }
            });
            identical &=
                shard_prints(&workload, db.catalog(), |raw| gather.search(raw).ok()) == after;

            ShardPoint {
                shards: n,
                build,
                search_p50_us: quest_bench::percentile_us(&samples, 50.0),
                search_qps: samples.len() as f64 / read_wall.as_secs_f64().max(1e-9),
                write_qps: writes as f64 / write_wall.as_secs_f64().max(1e-9),
                identical,
            }
        })
        .collect()
}

/// E13 — horizontal sharding: scatter-gather economics as the shard count
/// sweeps 1/2/4/8/16, with an inline identity gate — every configuration
/// must answer the full workload bit-identically (SQL text + score bits)
/// to the unsharded engine, pristine and after a mutation burst.
/// Correctness across shard counts, datasets, feedback epochs, and
/// recovery is pinned by `tests/shard.rs`; this experiment prices the
/// layout and refuses to report a divergent configuration.
///
/// Env knobs (used by the CI smoke run): `QUEST_E13_SHARDS` =
/// comma-separated shard counts (default `1,2,4,8,16`), `QUEST_E13_REPS` =
/// read-stream repetitions (default 6).
fn e13_sharding() {
    println!("\n## E13 — sharding: scatter-gather economics across shard counts (IMDB-shaped)\n");
    let reps: usize = std::env::var("QUEST_E13_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let shard_counts: Vec<usize> = std::env::var("QUEST_E13_SHARDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_default();
    let shard_counts = if shard_counts.is_empty() {
        vec![1, 2, 4, 8, 16]
    } else {
        shard_counts
    };

    let points = shard_sweep(&shard_counts, reps);
    let mut t = Table::new(&[
        "shards",
        "build",
        "read p50",
        "read qps",
        "write qps",
        "identity",
    ]);
    for p in &points {
        t.row(vec![
            p.shards.to_string(),
            fmt_dur(p.build),
            format!("{:.1}us", p.search_p50_us),
            format!("{:.0}", p.search_qps),
            format!("{:.0}", p.write_qps),
            if p.identical {
                "ok".into()
            } else {
                "DIVERGED".into()
            },
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(identity = full-workload SQL + score-bit equality with the unsharded engine, \
checked pristine and after the write rounds; shards scatter in-process threads, so read \
qps pins the scatter overhead per shard rather than cross-machine fan-out.)"
    );
    assert!(
        points.iter().all(|p| p.identical),
        "E13 identity gate: a sharded configuration diverged from the unsharded engine"
    );
}

// ---------------------------------------------------------------- E14

/// E14 — chaos: seeded deterministic fault schedules against replicated and
/// sharded topologies. Each schedule installs a generated `FaultPlan`, runs
/// a fixed mutation workload, drives the self-healing machinery (commit
/// retries, replica re-bootstrap, shard unfencing) to convergence under a
/// manual clock, and checks the healed service answers byte-identically to
/// a never-faulted twin. `QUEST_E14_SCHEDULES` overrides the schedule count
/// (CI smoke runs one batch and archives this output as the chaos summary).
fn e14_chaos() {
    use quest_fault::{self as fault, FaultPlan, ManualClock, RetryPolicy};
    use quest_replica::{Primary, PrimaryOptions, ReplicaSet, RoutingPolicy};
    use quest_shard::{ShardConfig, ShardError, ShardedPrimary};
    use quest_wal::ChangeRecord;
    use std::sync::Arc;

    println!(
        "\n## E14 — chaos: seeded fault schedules with self-healing convergence (IMDB-shaped)\n"
    );
    let schedules: u64 = std::env::var("QUEST_E14_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);

    let dataset = || {
        imdb::generate(&imdb::ImdbScale {
            movies: 40,
            seed: 7,
        })
        .expect("imdb generates")
    };
    let batches: Vec<Vec<ChangeRecord>> = (0..3i64)
        .map(|round| {
            let base = 930_000 + round * 10;
            vec![
                ChangeRecord::Insert {
                    table: "person".into(),
                    row: vec![
                        (base + 1).into(),
                        format!("Chaos Person {round}").into(),
                        (1950 + round).into(),
                    ],
                },
                ChangeRecord::Insert {
                    table: "movie".into(),
                    row: vec![
                        (base + 2).into(),
                        format!("Chaos Feature {round}").into(),
                        (1980 + round).into(),
                        7.0.into(),
                        (base + 1).into(),
                    ],
                },
            ]
        })
        .collect();
    let probes = ["chaos feature", "chaos person", "casablanca"];
    let e14_dir = |name: &str| {
        let dir = std::env::temp_dir().join(format!("quest-e14-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    };
    let retry = RetryPolicy {
        retries: 8,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(8),
        jitter_seed: 1,
    };

    // Fingerprints: per probe, each explanation's SQL + score bits in order.
    let prints = |search: &dyn Fn(&str) -> Option<quest_core::SearchOutcome>,
                  catalog: &relstore::Catalog| {
        probes
            .iter()
            .map(|raw| match search(raw) {
                Some(out) => out
                    .explanations
                    .iter()
                    .map(|e| (e.sql(catalog), e.score.to_bits()))
                    .collect(),
                None => Vec::new(),
            })
            .collect::<Vec<Vec<(String, u64)>>>()
    };

    // One replicated schedule under `plan` (None = the twin).
    let replicated = |tag: &str, plan: Option<FaultPlan>| {
        let dir = e14_dir(tag);
        let initial = dataset();
        let clock = Arc::new(ManualClock::new());
        let primary = Arc::new(
            Primary::open_with(
                &dir,
                initial.clone(),
                QuestConfig::default(),
                PrimaryOptions {
                    retry: retry.clone(),
                    clock: clock.clone(),
                    ..Default::default()
                },
            )
            .expect("primary opens"),
        );
        let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
        set.set_recovery(retry.clone(), clock.clone());
        set.spawn_replica("e14a").expect("replica");
        set.spawn_replica("e14b").expect("replica");
        if let Some(plan) = plan {
            fault::install(plan);
        }
        for batch in &batches {
            primary.commit(batch).expect("commit heals under retry");
            let _ = set.sync_all();
        }
        let target = primary.last_lsn();
        let mut ticks = 0u32;
        loop {
            clock.advance(Duration::from_millis(60));
            set.supervise();
            let synced = set.sync_all().is_ok();
            let replicas = set.replicas();
            if synced
                && replicas
                    .iter()
                    .all(|r| r.is_healthy() && r.applied_lsn() == target)
            {
                break;
            }
            ticks += 1;
            assert!(ticks < 256, "replicated schedule {tag} failed to converge");
        }
        let replica = &set.replicas()[0];
        let fp = prints(&|raw| replica.search(raw).ok(), initial.catalog());
        fault::clear();
        std::fs::remove_dir_all(&dir).ok();
        (fp, ticks)
    };

    // One sharded schedule under `plan` (None = the twin); a small retry
    // budget so stacked faults actually fence and exercise `recover()`.
    let sharded = |tag: &str, plan: Option<FaultPlan>| {
        let dir = e14_dir(tag);
        let db = dataset();
        let catalog = db.catalog().clone();
        let clock = Arc::new(ManualClock::new());
        let mut sp = ShardedPrimary::open(
            &dir,
            db,
            &ShardConfig {
                shard_count: 2,
                parallel: false,
            },
            QuestConfig::default(),
        )
        .expect("sharded primary opens");
        sp.set_recovery(
            RetryPolicy {
                retries: 2,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(4),
                jitter_seed: 1,
            },
            clock.clone(),
        );
        if let Some(plan) = plan {
            fault::install(plan);
        }
        let mut ticks = 0u32;
        for batch in &batches {
            match sp.commit(batch) {
                Ok(_) => {}
                Err(ShardError::ShardDown { .. }) => {
                    while !sp.is_healthy() {
                        clock.advance(Duration::from_millis(40));
                        sp.supervise();
                        ticks += 1;
                        assert!(ticks < 256, "sharded schedule {tag} failed to unfence");
                    }
                }
                Err(other) => panic!("unexpected commit error in {tag}: {other}"),
            }
        }
        assert!(sp.is_healthy(), "sharded set must end healthy in {tag}");
        let fp = prints(&|raw| sp.search(raw).ok(), &catalog);
        fault::clear();
        std::fs::remove_dir_all(&dir).ok();
        (fp, ticks)
    };

    let counters = || {
        let snap = quest_obs::global().snapshot();
        (
            snap.counter(fault::names::INJECTED).unwrap_or(0),
            snap.counter(fault::names::RETRIES).unwrap_or(0),
            snap.counter(fault::names::HEALS).unwrap_or(0),
        )
    };

    fault::clear();
    let twin_replicated = replicated("twin-r", None);
    let twin_sharded = sharded("twin-s", None);
    let (inj0, retry0, heal0) = counters();
    let mut identical = true;
    let mut max_ticks = 0u32;
    let per_topology = schedules.div_ceil(2);
    for seed in 0..schedules {
        let plan = FaultPlan::generate(seed, 5);
        if seed % 2 == 0 {
            let (fp, ticks) = replicated(&format!("r{seed}"), Some(plan));
            identical &= fp == twin_replicated.0;
            max_ticks = max_ticks.max(ticks);
        } else {
            let (fp, ticks) = sharded(&format!("s{seed}"), Some(plan));
            identical &= fp == twin_sharded.0;
            max_ticks = max_ticks.max(ticks);
        }
    }
    let (inj1, retry1, heal1) = counters();

    let mut t = Table::new(&[
        "topology",
        "schedules",
        "faults",
        "retries",
        "heals",
        "max heal ticks",
        "identity",
    ]);
    t.row(vec![
        "replicated + sharded".into(),
        schedules.to_string(),
        (inj1 - inj0).to_string(),
        (retry1 - retry0).to_string(),
        (heal1 - heal0).to_string(),
        max_ticks.to_string(),
        if identical {
            "ok".into()
        } else {
            "DIVERGED".into()
        },
    ]);
    print!("{}", t.render());
    println!(
        "\n(each schedule is a seeded FaultPlan over WAL, replica, and shard seams; identity = \
SQL + score-bit equality of the healed topology against a never-faulted twin; ~{per_topology} \
schedules per topology; heal ticks are manual-clock supervision rounds, so no wall time is \
spent in backoff.)"
    );
    assert!(
        identical,
        "E14 identity gate: a healed schedule diverged from its twin"
    );
    println!(
        "chaos OK: {schedules} schedules, {} faults injected, {} retries, {} heals, all \
converged healthy and twin-identical",
        inj1 - inj0,
        retry1 - retry0,
        heal1 - heal0
    );
}

// ---------------------------------------------------------------- E12

/// E12 — replication: read throughput as replicas are added (round-robin
/// routing, concurrent clients), then the cost of read-your-writes
/// consistency right after commits against eventual reads. Correctness —
/// replicas bit-identical to a cold engine at the same LSN — is pinned by
/// `tests/replica.rs`; this experiment measures the serving economics.
fn e12_replication() {
    use quest_replica::{Consistency, Primary, ReplicaSet, RoutingPolicy};
    use quest_wal::ChangeRecord;
    use std::sync::Arc;

    println!("\n## E12 — replication: read scale-out and consistency cost (IMDB-shaped)\n");
    const REPS: usize = 10;
    const CLIENTS: usize = 4;

    let ds = Dataset::Imdb;
    let db = ds.generate_default();
    let stream = quest_bench::shuffled_stream(&ds.workload(), REPS, 0x5EED_F00D_0000_0012);
    let e12_dir = |name: &str| {
        let dir = std::env::temp_dir().join(format!("quest-e12-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    };

    // Part A: read scale-out. The same warmed query stream, CLIENTS client
    // threads, routed over 0..4 replicas (0 = every read on the primary).
    let mut t = Table::new(&["replicas", "queries", "wall", "qps", "speedup"]);
    let mut base_wall = None;
    for replicas in [0usize, 1, 2, 4] {
        let dir = e12_dir(&format!("scale-{replicas}"));
        let primary =
            Arc::new(Primary::open(&dir, db.clone(), QuestConfig::default()).expect("primary"));
        let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
        for i in 0..replicas {
            set.spawn_replica(&format!("r{i}")).expect("replica");
        }
        // Warm every server's caches once (each replica sees each query).
        for wq in ds.workload() {
            for _ in 0..replicas.max(1) {
                set.query(&wq.raw, Consistency::Eventual).expect("warm");
            }
        }
        let (_, wall) = time(|| {
            std::thread::scope(|scope| {
                for chunk in stream.chunks(stream.len().div_ceil(CLIENTS)) {
                    let set = &set;
                    scope.spawn(move || {
                        for raw in chunk {
                            set.query(raw, Consistency::Eventual).expect("query");
                        }
                    });
                }
            });
        });
        let speedup = match base_wall {
            None => {
                base_wall = Some(wall);
                "1.00x".to_string()
            }
            Some(base) => format!("{:.2}x", base.as_secs_f64() / wall.as_secs_f64().max(1e-9)),
        };
        t.row(vec![
            replicas.to_string(),
            stream.len().to_string(),
            fmt_dur(wall),
            format!("{:.0}", stream.len() as f64 / wall.as_secs_f64().max(1e-9)),
            speedup,
        ]);
        std::fs::remove_dir_all(&dir).ok();
    }
    print!("{}", t.render());
    println!("\n(in-process replicas share one host's cores, so warm-cache throughput is flat by design — this table pins the router's overhead at near zero; the replica win is cache/lock isolation under churn and, across machines, real fan-out.)");

    // Part B: consistency cost. Two replicas with no background daemons;
    // after every commit, a burst of reads either tolerates staleness
    // (eventual: replicas drift behind) or demands the commit back
    // (read-your-writes: the first bounded read pulls a replica up to the
    // commit LSN over the shared log).
    const ROUNDS: usize = 5;
    const BURST: usize = 20;
    let mut t = Table::new(&[
        "consistency",
        "queries",
        "wall",
        "qps",
        "served stale",
        "max lag seen",
    ]);
    for read_your_writes in [false, true] {
        let dir = e12_dir(if read_your_writes { "ryw" } else { "eventual" });
        let primary =
            Arc::new(Primary::open(&dir, db.clone(), QuestConfig::default()).expect("primary"));
        let mut set = ReplicaSet::new(Arc::clone(&primary), RoutingPolicy::RoundRobin);
        for i in 0..2 {
            set.spawn_replica(&format!("r{i}")).expect("replica");
        }
        for wq in ds.workload().iter().take(BURST) {
            let _ = set.query(&wq.raw, Consistency::Eventual).expect("warm");
        }
        let mut stale = 0usize;
        let mut max_lag = 0u64;
        let queries: Vec<String> = ds
            .workload()
            .iter()
            .cycle()
            .take(BURST)
            .map(|wq| wq.raw.clone())
            .collect();
        let (_, wall) = time(|| {
            for round in 0..ROUNDS {
                let person_id = 820_000 + 2 * round as i64;
                let receipt = primary
                    .commit(&[
                        ChangeRecord::Insert {
                            table: "person".into(),
                            row: vec![
                                person_id.into(),
                                format!("Replicated Director {round}").into(),
                                1970.into(),
                            ],
                        },
                        ChangeRecord::Insert {
                            table: "movie".into(),
                            row: vec![
                                (person_id + 1).into(),
                                format!("Replicated Release {round}").into(),
                                2024.into(),
                                7.5.into(),
                                person_id.into(),
                            ],
                        },
                    ])
                    .expect("commit");
                let consistency = if read_your_writes {
                    Consistency::AtLeast(receipt.last_lsn)
                } else {
                    Consistency::Eventual
                };
                for raw in &queries {
                    let routed = set.query(raw, consistency).expect("query");
                    let lag = primary.last_lsn().saturating_sub(routed.lsn);
                    max_lag = max_lag.max(lag);
                    if lag > 0 {
                        stale += 1;
                    }
                }
            }
        });
        let total = ROUNDS * BURST;
        t.row(vec![
            if read_your_writes {
                "read-your-writes".into()
            } else {
                "eventual".into()
            },
            total.to_string(),
            fmt_dur(wall),
            format!("{:.0}", total as f64 / wall.as_secs_f64().max(1e-9)),
            format!("{stale}/{total}"),
            max_lag.to_string(),
        ]);
        std::fs::remove_dir_all(&dir).ok();
    }
    print!("{}", t.render());
    println!("\nread-your-writes pays one catch-up pull per commit (the shared log makes it a read, not a wait); eventual reads never block but drift by the full commit lag until a sync daemon catches the replicas up.");
}

// ---------------------------------------------------------------- E11

/// E11 — live update: sustained query throughput while mutation batches
/// interleave with the stream, against the static-data baseline. Each live
/// round applies one batch (insert person + movie, retitle an existing
/// movie, drop the previous round's movie) through the service's shared
/// engine before the next chunk of queries; the data epoch retires stale
/// cache entries, so the measured cost is honest (recompute + epoch purge +
/// engine re-sync), not stale-cache hits.
fn e11_live_update() {
    use quest_serve::{CachedEngine, QueryService};
    use quest_wal::ChangeRecord;

    println!("\n## E11 — query throughput under interleaved mutation batches (IMDB-shaped)\n");
    const REPS: usize = 20;
    const WORKERS: usize = 4;
    const CHUNK: usize = 50;
    let mut t = Table::new(&[
        "mode",
        "queries",
        "mutation batches",
        "wall",
        "qps",
        "slowdown",
        "fwd hit",
    ]);

    let ds = Dataset::Imdb;
    let engine = engine_for(ds);
    let stream = quest_bench::shuffled_stream(&ds.workload(), REPS, 0x5EED_F00D_0000_0011);
    // Existing movie PKs to retitle, read off the instance once.
    let movie_pks: Vec<relstore::Value> = {
        let db = engine.wrapper().database();
        let movie = db.catalog().table_id("movie").expect("movie");
        db.table_data(movie)
            .iter()
            .take(64)
            .map(|(_, row)| row.get(0).clone())
            .collect()
    };
    let batch_for = |round: usize| -> Vec<ChangeRecord> {
        let person_id = 800_000 + 2 * round as i64;
        let movie_id = person_id + 1;
        let mut batch = vec![
            ChangeRecord::Insert {
                table: "person".into(),
                row: vec![
                    person_id.into(),
                    format!("Fresh Director {round}").into(),
                    1970.into(),
                ],
            },
            ChangeRecord::Insert {
                table: "movie".into(),
                row: vec![
                    movie_id.into(),
                    format!("Hot Release {round}").into(),
                    2024.into(),
                    7.5.into(),
                    person_id.into(),
                ],
            },
            ChangeRecord::Update {
                table: "movie".into(),
                key: vec![movie_pks[round % movie_pks.len()].clone()],
                row: Vec::new(), // filled below: needs the live row
            },
        ];
        if round > 0 {
            batch.push(ChangeRecord::Delete {
                table: "movie".into(),
                key: vec![(movie_id - 2).into()],
            });
        }
        batch
    };

    let mut static_wall = None;
    for live in [false, true] {
        let service = QueryService::new(CachedEngine::new(engine.clone()), WORKERS);
        // Warm pass so both modes start from the steady state.
        for ticket in service.submit_batch(&stream) {
            let _ = ticket.wait();
        }
        let warm_stats = service.stats();
        let mut batches = 0usize;
        let (_, wall) = time(|| {
            for (round, chunk) in stream.chunks(CHUNK).enumerate() {
                if live {
                    let mut batch = batch_for(round);
                    // Resolve the retitle against the current live row.
                    if let ChangeRecord::Update { key, row, .. } = &mut batch[2] {
                        let engine_guard = service.engine().engine();
                        let db = engine_guard.wrapper().database();
                        let movie = db.catalog().table_id("movie").expect("movie");
                        let rid = db.table_data(movie).lookup_pk(key).expect("pk exists");
                        *row = db.table_data(movie).row(rid).values().to_vec();
                        row[1] = format!("Retitled Classic {round}").into();
                    }
                    service.engine().apply(&batch).expect("batch applies");
                    batches += 1;
                }
                for ticket in service.submit_batch(chunk) {
                    let _ = ticket.wait();
                }
            }
        });
        let stats = service.stats();
        let hits = stats.forward_cache.hits - warm_stats.forward_cache.hits;
        let misses = stats.forward_cache.misses - warm_stats.forward_cache.misses;
        let fwd = if hits + misses == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * hits as f64 / (hits + misses) as f64)
        };
        let slowdown = match static_wall {
            None => {
                static_wall = Some(wall);
                "1.00x".to_string()
            }
            Some(s) => format!("{:.2}x", wall.as_secs_f64() / s.as_secs_f64().max(1e-9)),
        };
        t.row(vec![
            if live { "live (mutating)" } else { "static" }.into(),
            stream.len().to_string(),
            batches.to_string(),
            fmt_dur(wall),
            format!("{:.0}", stream.len() as f64 / wall.as_secs_f64().max(1e-9)),
            slowdown,
            fwd,
        ]);
        service.shutdown();
    }
    print!("{}", t.render());
    println!("\nlive mode pays for epoch purges, cache refills, and engine re-syncs; correctness is pinned by tests/serve.rs (bit-identical to a cold engine on the mutated data).");
}

// ---------------------------------------------------------------- E10

/// E10 — serving throughput: the single-threaded engine vs the
/// `quest-serve` thread pool with cold and warm caches, on every dataset's
/// workload stream (each workload repeated and deterministically shuffled,
/// the shape of an analytical query stream with popular repeats).
fn e10_serve_throughput() {
    use quest_serve::{CachedEngine, QueryService};

    println!("\n## E10 — serve-throughput: thread pool + stage caches vs serial engine\n");
    const REPS: usize = 40;
    let mut t = Table::new(&[
        "dataset", "mode", "queries", "wall", "qps", "speedup", "fwd hit", "bwd hit",
    ]);
    let mut imdb_warm4_speedup = None;
    for ds in Dataset::ALL {
        let engine = engine_for(ds);
        let stream = quest_bench::shuffled_stream(&ds.workload(), REPS, 0x9E37_79B9_7F4A_7C15);
        let n = stream.len();

        // Serial baseline: today's blocking Quest::search loop, no cache.
        let (_, serial_t) = time(|| {
            for raw in &stream {
                let _ = engine.search(raw);
            }
        });
        let qps = |d: Duration| {
            if d.is_zero() {
                "inf".to_string()
            } else {
                format!("{:.0}", n as f64 / d.as_secs_f64())
            }
        };
        t.row(vec![
            ds.name().into(),
            "serial".into(),
            n.to_string(),
            fmt_dur(serial_t),
            qps(serial_t),
            "1.00x".into(),
            "-".into(),
            "-".into(),
        ]);

        for workers in [1usize, 2, 4] {
            let service = QueryService::new(CachedEngine::new(engine.clone()), workers);
            // Per-phase hit rates: cumulative counters minus the previous
            // phase's, so the warm row shows warm-pass behavior alone.
            let mut prev = service.stats();
            for phase in ["cold", "warm"] {
                let (_, wall) = time(|| {
                    let tickets = service.submit_batch(&stream);
                    for ticket in tickets {
                        let _ = ticket.wait();
                    }
                });
                let stats = service.stats();
                let rate = |hits: u64, misses: u64| {
                    let total = hits + misses;
                    if total == 0 {
                        "-".to_string()
                    } else {
                        format!("{:.1}%", 100.0 * hits as f64 / total as f64)
                    }
                };
                let fwd = rate(
                    stats.forward_cache.hits - prev.forward_cache.hits,
                    stats.forward_cache.misses - prev.forward_cache.misses,
                );
                let bwd = rate(
                    stats.backward_cache.hits - prev.backward_cache.hits,
                    stats.backward_cache.misses - prev.backward_cache.misses,
                );
                prev = stats;
                let speedup = serial_t.as_secs_f64() / wall.as_secs_f64().max(1e-9);
                if ds == Dataset::Imdb && workers == 4 && phase == "warm" {
                    imdb_warm4_speedup = Some(speedup);
                }
                t.row(vec![
                    ds.name().into(),
                    format!("serve {workers}w {phase}"),
                    n.to_string(),
                    fmt_dur(wall),
                    qps(wall),
                    format!("{speedup:.2}x"),
                    fwd,
                    bwd,
                ]);
            }
            service.shutdown();
        }
    }
    print!("{}", t.render());
    if let Some(s) = imdb_warm4_speedup {
        println!("\nwarm-cache IMDB at 4 workers: {s:.2}x serial throughput (target >= 2x)");
    }
}

// ---------------------------------------------------------------- E9

/// E9 — a-priori heuristic rules ablation: knock each semantic relationship
/// down to the unrelated floor and measure the damage (DESIGN.md's "design
/// choices" ablation; paper §3: the rules "foster the transition between
/// database terms belonging to the same table and belonging to tables
/// connected through foreign keys").
fn e9_rules_ablation() {
    println!("\n## E9 — a-priori semantic-rule ablation (MRR per dataset)\n");
    let base = SemanticRules::default();
    let floor = base.unrelated;
    let variants: Vec<(&str, SemanticRules)> = vec![
        ("full rules", base.clone()),
        (
            "no aggregation",
            SemanticRules {
                aggregation: floor,
                ..base.clone()
            },
        ),
        (
            "no inclusion (FK)",
            SemanticRules {
                inclusion: floor,
                ..base.clone()
            },
        ),
        (
            "no same-table",
            SemanticRules {
                same_table: floor,
                ..base.clone()
            },
        ),
        (
            "no generalization",
            SemanticRules {
                generalization: floor,
                ..base.clone()
            },
        ),
        (
            "flat (all = floor)",
            SemanticRules {
                aggregation: floor,
                inclusion: floor,
                same_table: floor,
                generalization: floor,
                identity: floor,
                ..base.clone()
            },
        ),
    ];
    let mut t = Table::new(&["rules", "imdb", "mondial", "dblp"]);
    for (label, rules) in &variants {
        let mut cells = vec![label.to_string()];
        for ds in Dataset::ALL {
            let db = ds.generate_default();
            let cfg = QuestConfig {
                rules: rules.clone(),
                ..Default::default()
            };
            let engine = Quest::new(FullAccessWrapper::new(db), cfg).expect("build");
            let m = evaluate(&engine, &ds.workload());
            cells.push(format!("{:.3}", m.mrr));
        }
        t.row(cells);
    }
    print!("{}", t.render());
}

// ---------------------------------------------------------------- E1

/// E1 — end-to-end effectiveness and latency on the IMDB-shaped database at
/// growing scale (demo message 1).
fn e1_scaling() {
    println!("\n## E1 — schema-based keyword→SQL at scale (IMDB-shaped)\n");
    let mut t = Table::new(&[
        "movies",
        "total rows",
        "setup",
        "avg query",
        "emissions",
        "forward",
        "backward",
        "combine",
        "hit@1",
        "hit@3",
        "MRR",
    ]);
    for movies in [500usize, 5_000, 25_000] {
        let (db, gen_t) =
            time(|| imdb::generate(&imdb::ImdbScale { movies, seed: 42 }).expect("generate"));
        let rows = db.total_rows();
        let (engine, setup_t) =
            time(|| Quest::new(FullAccessWrapper::new(db), QuestConfig::default()).expect("build"));
        let wl = imdb::workload();
        let mut stage = [Duration::ZERO; 4];
        let mut total = Duration::ZERO;
        let mut n = 0u32;
        for wq in &wl {
            if let Ok(out) = engine.search(&wq.raw) {
                let s = &out.timings;
                stage[0] += s.emissions;
                stage[1] += s.forward_apriori + s.forward_feedback;
                stage[2] += s.backward;
                stage[3] += s.combine_configs + s.combine_explanations;
                total += s.total();
                n += 1;
            }
        }
        let m = evaluate(&engine, &wl);
        let per = |d: Duration| fmt_dur(d / n.max(1));
        t.row(vec![
            movies.to_string(),
            rows.to_string(),
            fmt_dur(gen_t + setup_t),
            per(total),
            per(stage[0]),
            per(stage[1]),
            per(stage[2]),
            per(stage[3]),
            format!("{:.2}", m.hit_at_1),
            format!("{:.2}", m.hit_at_3),
            format!("{:.3}", m.mrr),
        ]);
    }
    print!("{}", t.render());
}

// ---------------------------------------------------------------- E2

/// E2 — the same queries through each module separately vs combined
/// (demo message 2).
fn e2_module_comparison() {
    println!("\n## E2 — per-module partial results vs DST combination\n");
    let mut t = Table::new(&["dataset", "mode", "hit@1", "hit@3", "MRR"]);
    for ds in Dataset::ALL {
        let db = ds.generate_default();
        let w = FullAccessWrapper::new(db);
        let wl = ds.workload();
        let catalog_owned = w.catalog().clone();
        let catalog = &catalog_owned;

        let forward = ForwardModule::new(&w, &SemanticRules::default()).expect("forward");
        let backward = BackwardModule::new(&w, &SchemaGraphWeights::default());

        // Train a feedback copy with two passes of perfect oracle feedback.
        let trained = forward.clone();
        let mut oracle = FeedbackOracle::perfect(11);
        for _ in 0..2 {
            for wq in &wl {
                let (cfg, _) = oracle.feedback_for(catalog, wq);
                trained.record_feedback(&cfg, true).expect("feedback");
            }
        }

        let k = 5usize;
        // Rank explanations per mode and evaluate against gold.
        type ModeFn<'a> = Box<dyn Fn(&WorkloadQuery) -> Vec<bool> + 'a>;
        let modes: Vec<(&str, ModeFn<'_>)> = vec![
            (
                "a-priori only",
                Box::new(|wq: &WorkloadQuery| {
                    let q = wq.parse();
                    let em = forward.emissions(&w, &q);
                    let configs = forward.top_k_apriori(&em, k).unwrap_or_default();
                    mask_for_configs(catalog, &backward, &q, &configs, wq, k)
                }),
            ),
            (
                "feedback only",
                Box::new(|wq: &WorkloadQuery| {
                    let q = wq.parse();
                    let em = trained.emissions(&w, &q);
                    let configs = trained.top_k_feedback(&em, k).unwrap_or_default();
                    mask_for_configs(catalog, &backward, &q, &configs, wq, k)
                }),
            ),
            (
                "backward only",
                Box::new(|wq: &WorkloadQuery| {
                    // Candidates from the a-priori list, ranked purely by
                    // interpretation (join path) score.
                    let q = wq.parse();
                    let em = forward.emissions(&w, &q);
                    let configs = forward.top_k_apriori(&em, k).unwrap_or_default();
                    let gold = wq.gold.to_statement(catalog).expect("gold");
                    let mut scored: Vec<(f64, bool)> = Vec::new();
                    for cfg in &configs {
                        for interp in backward
                            .interpretations(catalog, cfg, k)
                            .unwrap_or_default()
                        {
                            if let Ok(stmt) = build_query(
                                catalog,
                                backward.schema_graph(),
                                &q,
                                cfg,
                                &interp,
                                None,
                            ) {
                                scored.push((interp.score, statements_equivalent(&stmt, &gold)));
                            }
                        }
                    }
                    scored
                        .sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                    scored.into_iter().take(k).map(|(_, hit)| hit).collect()
                }),
            ),
        ];

        for (name, f) in &modes {
            let masks: Vec<Vec<bool>> = wl.iter().map(f.as_ref()).collect();
            let m = aggregate(&masks);
            t.row(vec![
                ds.name().into(),
                (*name).into(),
                format!("{:.2}", m.hit_at_1),
                format!("{:.2}", m.hit_at_3),
                format!("{:.3}", m.mrr),
            ]);
        }

        // Combined: the full engine, trained identically.
        let engine = Quest::new(w.clone(), QuestConfig::default()).expect("engine builds");
        let mut oracle = FeedbackOracle::perfect(11);
        for _ in 0..2 {
            for wq in &wl {
                let (cfg, _) = oracle.feedback_for(engine.wrapper().catalog(), wq);
                engine.feedback_configuration(&cfg, true).expect("feedback");
            }
        }
        let m = evaluate(&engine, &wl);
        t.row(vec![
            ds.name().into(),
            "combined (QUEST)".into(),
            format!("{:.2}", m.hit_at_1),
            format!("{:.2}", m.hit_at_3),
            format!("{:.3}", m.mrr),
        ]);
    }
    print!("{}", t.render());
}

/// Rank a configuration list (scores as given), expand each to its best
/// interpretation, and compare the statements to gold.
fn mask_for_configs(
    catalog: &relstore::Catalog,
    backward: &BackwardModule,
    q: &KeywordQuery,
    configs: &[Configuration],
    wq: &WorkloadQuery,
    k: usize,
) -> Vec<bool> {
    let gold = wq.gold.to_statement(catalog).expect("gold resolves");
    configs
        .iter()
        .take(k)
        .map(|cfg| {
            backward
                .interpretations(catalog, cfg, 1)
                .ok()
                .and_then(|is| is.into_iter().next())
                .and_then(|interp| {
                    build_query(catalog, backward.schema_graph(), q, cfg, &interp, None).ok()
                })
                .map(|stmt| statements_equivalent(&stmt, &gold))
                .unwrap_or(false)
        })
        .collect()
}

// ---------------------------------------------------------------- E3

/// E3 — schema-level Steiner trees vs instance-level baselines at growing
/// instance size (demo message 3).
fn e3_schema_vs_instance() {
    println!("\n## E3 — schema-level Steiner vs instance-level baselines (IMDB-shaped)\n");
    let mut t = Table::new(&[
        "movies",
        "schema nodes",
        "schema edges",
        "QUEST top-5 ST",
        "instance nodes",
        "instance edges",
        "IG build",
        "BANKS top-5",
        "DISCOVER CNs",
        "DISCOVER time",
    ]);
    for movies in [200usize, 1_000, 5_000, 20_000] {
        let db = imdb::generate(&imdb::ImdbScale { movies, seed: 42 }).expect("generate");
        let w = FullAccessWrapper::new(db);
        let backward = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let catalog = w.catalog();

        // QUEST: top-5 Steiner trees for the actor-join query's terminals.
        let attrs = [
            catalog.attr_id("person", "name").expect("attr"),
            catalog.attr_id("movie", "title").expect("attr"),
        ];
        let (_, st_t) = time(|| {
            backward
                .interpretations_for_attrs(&attrs, 5)
                .expect("steiner")
        });

        // Instance graph + BANKS.
        let (ig, ig_t) = time(|| InstanceGraph::build(w.database()));
        let q = KeywordQuery::parse("leigh wind").expect("parse");
        let (banks, banks_t) = time(|| banks_search(w.database(), &ig, &q, 5).expect("banks"));
        let _ = banks;

        // DISCOVER candidate networks.
        let (cns, cn_t) = time(|| discover_statements(w.database(), &q, 4, Some(10)));

        t.row(vec![
            movies.to_string(),
            backward.schema_graph().node_count().to_string(),
            backward.schema_graph().edge_count().to_string(),
            fmt_dur(st_t),
            ig.node_count().to_string(),
            ig.edge_count().to_string(),
            fmt_dur(ig_t),
            fmt_dur(banks_t),
            cns.len().to_string(),
            fmt_dur(cn_t),
        ]);
    }
    print!("{}", t.render());
    println!("\nschema graph is instance-size independent; the tuple graph and BANKS grow with the data.");
}

// ---------------------------------------------------------------- E4

/// E4 — DST sensitivity: uncertainty sweep and the feedback learning curve
/// (demo message 4 + abstract claim).
fn e4_dst_sensitivity() {
    println!("\n## E4a — forward/backward uncertainty sweep (IMDB-shaped, MRR)\n");
    let mut t = Table::new(&["O_C \\ O_I", "0.1", "0.3", "0.5", "0.7", "0.9"]);
    let db = imdb::generate(&imdb::ImdbScale {
        movies: 1_000,
        seed: 42,
    })
    .expect("generate");
    let w = FullAccessWrapper::new(db);
    let wl = imdb::workload();
    for o_c in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut cells = vec![format!("{o_c:.1}")];
        for o_i in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let cfg = QuestConfig {
                o_c,
                o_i,
                ..Default::default()
            };
            let engine = Quest::new(w.clone(), cfg).expect("build");
            let m = evaluate(&engine, &wl);
            cells.push(format!("{:.3}", m.mrr));
        }
        t.row(cells);
    }
    print!("{}", t.render());

    println!("\n## E4b — accuracy vs amount of (noisy) feedback\n");
    let mut t = Table::new(&["feedbacks", "O_Cf eff", "feedback-only MRR", "combined MRR"]);
    let forward0 = ForwardModule::new(&w, &SemanticRules::default()).expect("forward");
    let backward = BackwardModule::new(&w, &SchemaGraphWeights::default());
    let catalog_owned = w.catalog().clone();
    let catalog = &catalog_owned;
    let engine = Quest::new(w.clone(), QuestConfig::default()).expect("build");
    let fwd = forward0;
    let mut oracle_a = FeedbackOracle::new(0.2, 21);
    let mut oracle_b = FeedbackOracle::new(0.2, 21);
    let steps = [0usize, 12, 24, 60, 120];
    let mut given = 0usize;
    for target in steps {
        while given < target {
            let wq = &wl[given % wl.len()];
            let (cfg_a, _) = oracle_a.feedback_for(catalog, wq);
            fwd.record_feedback(&cfg_a, true).expect("feedback");
            let (cfg_b, _) = oracle_b.feedback_for(catalog, wq);
            engine
                .feedback_configuration(&cfg_b, true)
                .expect("feedback");
            given += 1;
        }
        // Feedback-only ranking quality.
        let masks: Vec<Vec<bool>> = wl
            .iter()
            .map(|wq| {
                let q = wq.parse();
                let em = fwd.emissions(&w, &q);
                let configs = fwd.top_k_feedback(&em, 5).unwrap_or_default();
                mask_for_configs(catalog, &backward, &q, &configs, wq, 5)
            })
            .collect();
        let fb_only = aggregate(&masks);
        let combined = evaluate(&engine, &wl);
        t.row(vec![
            target.to_string(),
            format!("{:.3}", engine.effective_o_cf()),
            format!("{:.3}", fb_only.mrr),
            format!("{:.3}", combined.mrr),
        ]);
    }
    print!("{}", t.render());
}

// ---------------------------------------------------------------- E5

/// E5 — full access vs Deep-Web wrapper on all three datasets.
fn e5_deep_web() {
    println!("\n## E5 — full access vs hidden source (Deep-Web wrapper)\n");
    let mut t = Table::new(&["dataset", "access", "hit@1", "hit@3", "hit@k", "MRR"]);
    for ds in Dataset::ALL {
        let wl = ds.workload();
        // Full access.
        let full = engine_for(ds);
        let m = evaluate(&full, &wl);
        t.row(vec![
            ds.name().into(),
            "full".into(),
            format!("{:.2}", m.hit_at_1),
            format!("{:.2}", m.hit_at_3),
            format!("{:.2}", m.hit_at_k),
            format!("{:.3}", m.mrr),
        ]);
        // Hidden.
        let db = ds.generate_default();
        let ann = annotations_for(ds, db.catalog());
        let deep = Quest::new_deep(db, ann);
        let catalog = deep.wrapper().catalog();
        let masks: Vec<Vec<bool>> = wl
            .iter()
            .map(|wq| {
                let gold = wq.gold.to_statement(catalog).expect("gold");
                deep.search(&wq.raw)
                    .map(|o| {
                        o.explanations
                            .iter()
                            .map(|e| statements_equivalent(&e.statement, &gold))
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        let m = aggregate(&masks);
        t.row(vec![
            ds.name().into(),
            "deep web".into(),
            format!("{:.2}", m.hit_at_1),
            format!("{:.2}", m.hit_at_3),
            format!("{:.2}", m.hit_at_k),
            format!("{:.3}", m.mrr),
        ]);
    }
    print!("{}", t.render());
}

/// Helper trait-ish constructor to keep E5 readable.
trait QuestDeep {
    fn new_deep(db: relstore::Database, ann: AnnotationSet) -> Quest<DeepWebWrapper>;
}
impl QuestDeep for Quest<DeepWebWrapper> {
    fn new_deep(db: relstore::Database, ann: AnnotationSet) -> Quest<DeepWebWrapper> {
        Quest::new(DeepWebWrapper::new(db, ann, 50), QuestConfig::default()).expect("build")
    }
}

/// Plausible owner-published annotations per dataset.
fn annotations_for(ds: Dataset, c: &relstore::Catalog) -> AnnotationSet {
    let mut ann = AnnotationSet::new();
    let mut pat = |t: &str, a: &str, p: &str| {
        let attr = c.attr_id(t, a).expect("attr exists");
        ann.set_pattern(attr, p).expect("pattern compiles");
    };
    match ds {
        Dataset::Imdb => {
            pat("movie", "year", r"(18|19|20)\d{2}");
            pat("person", "birth_year", r"(18|19|20)\d{2}");
            pat("person", "name", r"[A-Za-z' ]+");
            pat("movie", "title", r"[A-Za-z0-9' ]+");
            pat("company", "name", r"[A-Z][a-z]+ Pictures");
            let genre = c.attr_id("genre", "name").expect("attr");
            ann.add_examples(genre, ["Drama", "Comedy", "Thriller", "Noir", "Western"]);
        }
        Dataset::Mondial => {
            // A geographic form endpoint typically exposes its vocabularies
            // as dropdown lists: publish them as example values.
            let mut ex = |t: &str, a: &str, values: &[&str]| {
                let attr = c.attr_id(t, a).expect("attr exists");
                ann.add_examples(attr, values.iter().copied());
            };
            ex("country", "name", quest_data::corpus::COUNTRIES);
            ex("city", "name", quest_data::corpus::CITIES);
            ex("river", "name", quest_data::corpus::RIVERS);
            ex("mountain", "name", quest_data::corpus::MOUNTAINS);
            ex("language", "name", quest_data::corpus::LANGUAGES);
            ex("religion", "name", quest_data::corpus::RELIGIONS);
            let org = c.attr_id("organization", "abbreviation").expect("attr");
            ann.add_examples(
                org,
                quest_data::corpus::ORGANIZATIONS
                    .iter()
                    .map(|(_, abbr)| *abbr),
            );
        }
        Dataset::Dblp => {
            pat("author", "name", r"[A-Za-z' ]+");
            pat("publication", "title", r"[A-Za-z0-9 ]+");
            pat("publication", "year", r"(19|20)\d{2}");
            let venue = c.attr_id("venue", "name").expect("attr");
            ann.add_examples(venue, quest_data::corpus::VENUES.iter().copied());
            let aff = c.attr_id("author", "affiliation").expect("attr");
            ann.add_examples(
                aff,
                quest_data::corpus::UNIVERSITIES
                    .iter()
                    .map(|u| format!("University of {u}")),
            );
            let kind = c.attr_id("venue", "kind").expect("attr");
            ann.add_examples(kind, ["journal", "conference"]);
        }
    }
    ann
}

// ---------------------------------------------------------------- E7

/// E7 — list Viterbi k sweep: accuracy and latency vs k.
fn e7_k_sweep() {
    println!("\n## E7 — top-k sweep (IMDB-shaped)\n");
    let mut t = Table::new(&["k", "avg query", "hit@1", "hit@k", "MRR"]);
    let db = imdb::generate(&imdb::ImdbScale {
        movies: 1_000,
        seed: 42,
    })
    .expect("generate");
    let w = FullAccessWrapper::new(db);
    let wl = imdb::workload();
    for k in [1usize, 3, 5, 10, 20] {
        let cfg = QuestConfig {
            k,
            ..Default::default()
        };
        let engine = Quest::new(w.clone(), cfg).expect("build");
        let lat = quest_bench::mean_query_latency(&engine, &wl);
        let m = evaluate(&engine, &wl);
        t.row(vec![
            k.to_string(),
            fmt_dur(lat),
            format!("{:.2}", m.hit_at_1),
            format!("{:.2}", m.hit_at_k),
            format!("{:.3}", m.mrr),
        ]);
    }
    print!("{}", t.render());
}

// ---------------------------------------------------------------- E8

/// E8 — mutual-information edge weights vs uniform weights.
///
/// Two measurements:
/// * on the standard datasets, the fraction of top-3 interpretations whose
///   SQL returns tuples (both weightings do well — the generated joins are
///   dense);
/// * on the *sparse-directors* IMDB variant, where the direct person↔movie
///   FK is empty in the instance while the `cast_info` path is populated:
///   MI weighting routes around the dead join, uniform weighting walks
///   straight into it ("we want to consider only join-paths actually
///   existing in the database instance", paper §1).
fn e8_mi_ablation() {
    println!("\n## E8a — non-empty interpretations, standard datasets (top-3)\n");
    let mi_weights = SchemaGraphWeights {
        mi_penalty: 4.0,
        ..Default::default()
    };
    let mut t = Table::new(&["dataset", "weighting", "non-empty", "of total"]);
    for ds in Dataset::ALL {
        let db = ds.generate_default();
        let w = FullAccessWrapper::new(db);
        for (label, backward) in [
            ("MI", BackwardModule::new(&w, &mi_weights)),
            ("uniform", BackwardModule::new_uniform(&w)),
        ] {
            let (non_empty, total) = non_empty_stats(&w, &backward, &ds.workload(), 3, false);
            t.row(vec![
                ds.name().into(),
                label.into(),
                format!("{:.1}%", 100.0 * non_empty as f64 / total.max(1) as f64),
                format!("{non_empty}/{total}"),
            ]);
        }
    }
    print!("{}", t.render());

    println!("\n## E8b — top-1 interpretation non-empty, sparse-directors IMDB\n");
    let mut t = Table::new(&["weighting", "top-1 non-empty", "of queries"]);
    let db = imdb::generate_sparse_directors(&imdb::ImdbScale {
        movies: 1_000,
        seed: 42,
    })
    .expect("generate sparse");
    let w = FullAccessWrapper::new(db);
    // Only the person↔movie joining queries discriminate the two paths.
    let joining: Vec<WorkloadQuery> = imdb::workload()
        .into_iter()
        .filter(|wq| {
            wq.gold.tables.contains(&"person".to_string())
                && wq.gold.tables.contains(&"movie".to_string())
        })
        .collect();
    for (label, backward) in [
        ("MI", BackwardModule::new(&w, &mi_weights)),
        ("uniform", BackwardModule::new_uniform(&w)),
    ] {
        let (non_empty, total) = non_empty_stats(&w, &backward, &joining, 1, true);
        t.row(vec![
            label.into(),
            format!("{:.1}%", 100.0 * non_empty as f64 / total.max(1) as f64),
            format!("{non_empty}/{total}"),
        ]);
    }
    print!("{}", t.render());
}

/// Count non-empty interpretations among each gold configuration's top-k.
/// With `value_terms_only`, predicates from the gold config are kept but the
/// configuration used for routing is the gold one (pure backward test).
fn non_empty_stats(
    w: &FullAccessWrapper,
    backward: &BackwardModule,
    workload: &[WorkloadQuery],
    k: usize,
    top1_only: bool,
) -> (usize, usize) {
    let catalog = w.catalog();
    let mut non_empty = 0usize;
    let mut total = 0usize;
    for wq in workload {
        let q = wq.parse();
        let Ok(cfg) = wq.gold.to_configuration(catalog) else {
            continue;
        };
        let interps = backward
            .interpretations(catalog, &cfg, k)
            .unwrap_or_default();
        let take = if top1_only { 1 } else { k };
        for interp in interps.into_iter().take(take) {
            let Ok(stmt) = build_query(catalog, backward.schema_graph(), &q, &cfg, &interp, None)
            else {
                continue;
            };
            total += 1;
            if w.has_results(&stmt).unwrap_or(false) {
                non_empty += 1;
            }
        }
    }
    (non_empty, total)
}
