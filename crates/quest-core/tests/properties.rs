//! Property-based tests for quest-core: the pattern engine against a naive
//! reference semantics, the DST combiner's ranking laws, and keyword
//! parsing robustness.

use proptest::prelude::*;
use quest_core::combiner::{combine_explanation_scores, combine_ranked};
use quest_core::wrapper::Pattern;
use quest_core::KeywordQuery;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn literal_patterns_match_exactly_themselves(s in "[a-zA-Z0-9]{1,12}", other in "[a-zA-Z0-9]{1,12}") {
        let p = Pattern::compile(&s).expect("literal compiles");
        prop_assert!(p.is_match(&s));
        if s != other {
            prop_assert!(!p.is_match(&other));
        }
    }

    #[test]
    fn digit_class_semantics(n in 0u32..99999) {
        let s = n.to_string();
        let p = Pattern::compile(r"\d+").expect("compiles");
        prop_assert!(p.is_match(&s));
        let padded = format!("{s}x");
        prop_assert!(!p.is_match(&padded));
        let exact = Pattern::compile(&format!(r"\d{{{}}}", s.len())).expect("compiles");
        prop_assert!(exact.is_match(&s));
    }

    #[test]
    fn star_accepts_any_repetition(c in "[a-z]", reps in 0usize..20) {
        let p = Pattern::compile(&format!("{c}*")).expect("compiles");
        prop_assert!(p.is_match(&c.repeat(reps)));
    }

    #[test]
    fn bounded_repeat_counts(min in 0usize..4, extra in 0usize..4, reps in 0usize..10) {
        let max = min + extra;
        let p = Pattern::compile(&format!("a{{{min},{max}}}")).expect("compiles");
        let s = "a".repeat(reps);
        prop_assert_eq!(p.is_match(&s), reps >= min && reps <= max);
    }

    #[test]
    fn alternation_is_union(a in "[a-z]{1,6}", b in "[a-z]{1,6}", probe in "[a-z]{1,6}") {
        let p = Pattern::compile(&format!("{a}|{b}")).expect("compiles");
        prop_assert_eq!(p.is_match(&probe), probe == a || probe == b);
    }

    #[test]
    fn partial_match_implied_by_full(s in "[a-z]{1,8}", pad in "[a-z]{0,5}") {
        let p = Pattern::compile(&s).expect("compiles");
        let padded = format!("{pad}{s}{pad}");
        prop_assert!(p.is_partial_match(&padded));
    }

    #[test]
    fn combiner_output_is_ranked_distribution(
        s1 in proptest::collection::vec(0.01f64..1.0, 1..6),
        s2 in proptest::collection::vec(0.01f64..1.0, 1..6),
        o1 in 0.05f64..0.95,
        o2 in 0.05f64..0.95,
    ) {
        let l1: Vec<(usize, f64)> = s1.iter().enumerate().collect::<Vec<_>>()
            .iter().map(|(i, s)| (*i, **s)).collect();
        let l2: Vec<(usize, f64)> = s2.iter().enumerate().map(|(i, s)| (i + 3, *s)).collect();
        let out = combine_ranked(&l1, o1, &l2, o2).expect("combines");
        let total: f64 = out.iter().map(|(_, s)| s).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for w in out.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 - 1e-12);
        }
        // Every input hypothesis appears exactly once.
        let mut keys: Vec<usize> = out.iter().map(|(k, _)| *k).collect();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), out.len());
    }

    #[test]
    fn explanation_scores_form_distribution(
        cfg_scores in proptest::collection::vec(0.01f64..1.0, 1..4),
        interp_scores in proptest::collection::vec((0usize..4, 0.01f64..1.0), 1..8),
        o_c in 0.05f64..0.95,
        o_i in 0.05f64..0.95,
    ) {
        // Clamp config indexes into range.
        let n = cfg_scores.len();
        let expl: Vec<(usize, f64)> = interp_scores
            .iter()
            .map(|(ci, s)| (ci % n, *s))
            .collect();
        let scores = combine_explanation_scores(&cfg_scores, &expl, o_c, o_i).expect("combines");
        prop_assert_eq!(scores.len(), expl.len());
        let total: f64 = scores.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for s in &scores {
            prop_assert!(*s >= -1e-12);
        }
    }

    #[test]
    fn keyword_parse_never_panics(s in "\\PC{0,60}") {
        // Any printable garbage either parses or errors; no panics.
        let _ = KeywordQuery::parse(&s);
    }

    #[test]
    fn parsed_keywords_are_normalized_and_bounded(s in "[a-zA-Z ,.'\"-]{1,60}") {
        if let Ok(q) = KeywordQuery::parse(&s) {
            prop_assert!(!q.is_empty());
            prop_assert!(q.len() <= quest_core::MAX_KEYWORDS);
            for kw in &q.keywords {
                prop_assert!(!kw.normalized.is_empty());
                prop_assert_eq!(kw.normalized.clone(), kw.normalized.to_lowercase());
            }
        }
    }
}
