//! The combiner module: Dempster-Shafer aggregation of partial results.
//!
//! Implements Algorithm 1's `CombinerDST`: for each evidence source, add the
//! scores of its ranked hypotheses as singleton masses (`addEvidence`),
//! assign the source's uncertainty degree to the universe
//! (`setUncertainty`), `normalize`, then apply Dempster's rule of
//! combination. Used twice (paper §3): first to merge the a-priori and
//! feedback configuration lists (`O_Cap`, `O_Cf`), then to merge combined
//! configurations with the backward module's interpretations (`O_C`, `O_I`).

use std::collections::HashMap;
use std::hash::Hash;

use quest_dst::{dempster_combine, DstError, Frame, MassFunction, MAX_ELEMENTS};

use crate::error::QuestError;

/// Validated uncertainty degree in [0, 1].
fn check_uncertainty(o: f64, name: &str) -> Result<f64, QuestError> {
    if !o.is_finite() || !(0.0..=1.0).contains(&o) {
        return Err(QuestError::BadParameter(format!(
            "uncertainty {name} = {o} outside [0, 1]"
        )));
    }
    Ok(o)
}

/// Combine two ranked hypothesis lists over a shared (implicit) frame.
///
/// Each list is a set of `(hypothesis, score)` pairs; scores need not be
/// normalized. `o1`/`o2` are the sources' uncertainty degrees. An empty list
/// behaves as a vacuous (fully ignorant) source. Returns hypotheses ranked
/// by pignistic probability, descending.
///
/// The union of hypotheses is capped at [`MAX_ELEMENTS`]; beyond that, the
/// lowest-scored hypotheses are dropped (QUEST's lists are top-k with small
/// k, so the cap is never met in practice).
pub fn combine_ranked<T>(
    list1: &[(T, f64)],
    o1: f64,
    list2: &[(T, f64)],
    o2: f64,
) -> Result<Vec<(T, f64)>, QuestError>
where
    T: Clone + Eq + Hash,
{
    let o1 = check_uncertainty(o1, "O1")?;
    let o2 = check_uncertainty(o2, "O2")?;

    // Build the shared universe: union of hypotheses, best score first.
    // Collected in first-appearance order — not HashMap key order — so
    // equal-scored ties break identically on every call and the combination
    // is bit-for-bit reproducible (frame element order decides float
    // summation order downstream).
    let mut best: HashMap<&T, f64> = HashMap::new();
    let mut universe: Vec<&T> = Vec::new();
    for (t, s) in list1.iter().chain(list2.iter()) {
        match best.entry(t) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if *s > *e.get() {
                    e.insert(*s);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(*s);
                universe.push(t);
            }
        }
    }
    universe.sort_by(|a, b| {
        best[*b]
            .partial_cmp(&best[*a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    universe.truncate(MAX_ELEMENTS);
    if universe.is_empty() {
        return Ok(Vec::new());
    }
    let index: HashMap<&T, usize> = universe.iter().enumerate().map(|(i, t)| (*t, i)).collect();

    let frame = Frame::new(universe.len())?;
    let m1 = evidence_mass(frame, list1, &index, o1)?;
    let m2 = evidence_mass(frame, list2, &index, o2)?;
    let combined = match dempster_combine(&m1, &m2) {
        Ok(c) => c.mass,
        // Totally conflicting sources: fall back to the less uncertain one.
        Err(DstError::TotalConflict) => {
            if o1 <= o2 {
                m1
            } else {
                m2
            }
        }
        Err(e) => return Err(e.into()),
    };

    let mut out: Vec<(T, f64)> = universe
        .iter()
        .enumerate()
        .map(|(i, t)| Ok(((*t).clone(), combined.pignistic(i)?)))
        .collect::<Result<_, DstError>>()?;
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok(out)
}

/// `addEvidence` + `setUncertainty` + `normalize` for one source.
fn evidence_mass<T: Eq + Hash>(
    frame: Frame,
    list: &[(T, f64)],
    index: &HashMap<&T, usize>,
    uncertainty: f64,
) -> Result<MassFunction, QuestError> {
    let mut m = MassFunction::new(frame);
    let mut added = false;
    for (t, s) in list {
        let Some(&i) = index.get(t) else { continue }; // truncated by cap
        if *s > 0.0 {
            m.add_singleton(i, *s)?;
            added = true;
        }
    }
    if !added {
        return Ok(MassFunction::vacuous(frame));
    }
    m.set_uncertainty(uncertainty)?;
    Ok(m)
}

/// Second-level combination (configurations × interpretations →
/// explanations).
///
/// Explanations are `(configuration index, interpretation)` pairs. The
/// forward source supports *sets*: its evidence for configuration `c` is a
/// focal set containing every explanation derived from `c`. The backward
/// source scores each explanation individually (singletons). Returns the
/// pignistic score per explanation, aligned with `explanations`.
pub fn combine_explanation_scores(
    config_scores: &[f64],
    explanations: &[(usize, f64)],
    o_c: f64,
    o_i: f64,
) -> Result<Vec<f64>, QuestError> {
    let o_c = check_uncertainty(o_c, "O_C")?;
    let o_i = check_uncertainty(o_i, "O_I")?;
    if explanations.is_empty() {
        return Ok(Vec::new());
    }
    if explanations.len() > MAX_ELEMENTS {
        return Err(QuestError::BadParameter(format!(
            "too many explanations for one frame: {} (max {MAX_ELEMENTS})",
            explanations.len()
        )));
    }
    let frame = Frame::new(explanations.len())?;

    // Forward source: mass on the set of explanations sharing a config.
    let mut fwd = MassFunction::new(frame);
    let mut any_fwd = false;
    for (ci, &score) in config_scores.iter().enumerate() {
        if score <= 0.0 {
            continue;
        }
        let mut set = quest_dst::FocalSet::EMPTY;
        for (ei, (eci, _)) in explanations.iter().enumerate() {
            if *eci == ci {
                set = set.union(frame.singleton(ei)?);
            }
        }
        if !set.is_empty() {
            fwd.add_evidence(set, score)?;
            any_fwd = true;
        }
    }
    let fwd = if any_fwd {
        let mut f = fwd;
        f.set_uncertainty(o_c)?;
        f
    } else {
        MassFunction::vacuous(frame)
    };

    // Backward source: singleton per explanation.
    let mut bwd = MassFunction::new(frame);
    let mut any_bwd = false;
    for (ei, (_, score)) in explanations.iter().enumerate() {
        if *score > 0.0 {
            bwd.add_singleton(ei, *score)?;
            any_bwd = true;
        }
    }
    let bwd = if any_bwd {
        let mut b = bwd;
        b.set_uncertainty(o_i)?;
        b
    } else {
        MassFunction::vacuous(frame)
    };

    let combined = match dempster_combine(&fwd, &bwd) {
        Ok(c) => c.mass,
        Err(DstError::TotalConflict) => {
            if o_c <= o_i {
                fwd
            } else {
                bwd
            }
        }
        Err(e) => return Err(e.into()),
    };
    (0..explanations.len())
        .map(|i| combined.pignistic(i).map_err(Into::into))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_promotes_shared_hypothesis() {
        let l1 = [("a", 0.6), ("b", 0.4)];
        let l2 = [("a", 0.5), ("c", 0.5)];
        let out = combine_ranked(&l1, 0.2, &l2, 0.2).unwrap();
        assert_eq!(out[0].0, "a");
        assert_eq!(out.len(), 3);
        let total: f64 = out.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_source_is_ignorant_not_veto() {
        let l1 = [("a", 0.7), ("b", 0.3)];
        let l2: [(&str, f64); 0] = [];
        let out = combine_ranked(&l1, 0.1, &l2, 0.5).unwrap();
        assert_eq!(out[0].0, "a");
        // Ranking follows the only informative source.
        assert!(out[0].1 > out[1].1);
    }

    #[test]
    fn both_empty_yields_empty() {
        let l: [(&str, f64); 0] = [];
        assert!(combine_ranked(&l, 0.1, &l, 0.1).unwrap().is_empty());
    }

    #[test]
    fn uncertainty_tilts_toward_confident_source() {
        let l1 = [("a", 1.0)];
        let l2 = [("b", 1.0)];
        // Source 1 confident, source 2 mostly ignorant.
        let out = combine_ranked(&l1, 0.1, &l2, 0.9).unwrap();
        assert_eq!(out[0].0, "a");
        // Flip the uncertainties: ranking flips.
        let out = combine_ranked(&l1, 0.9, &l2, 0.1).unwrap();
        assert_eq!(out[0].0, "b");
    }

    #[test]
    fn total_conflict_falls_back() {
        let l1 = [("a", 1.0)];
        let l2 = [("b", 1.0)];
        // Zero ignorance on both: total conflict; the less uncertain wins
        // (ties resolve to source 1).
        let out = combine_ranked(&l1, 0.0, &l2, 0.0).unwrap();
        assert_eq!(out[0].0, "a");
    }

    #[test]
    fn invalid_uncertainty_rejected() {
        let l = [("a", 1.0)];
        assert!(combine_ranked(&l, -0.1, &l, 0.1).is_err());
        assert!(combine_ranked(&l, 0.1, &l, 1.5).is_err());
        assert!(combine_ranked(&l, f64::NAN, &l, 0.1).is_err());
    }

    #[test]
    fn explanation_combination_respects_both_sources() {
        // Two configs; config 0 strong. Three explanations: e0,e1 from c0
        // (backward prefers e1), e2 from c1.
        let config_scores = [0.8, 0.2];
        let explanations = [(0usize, 0.3), (0, 0.7), (1, 0.9)];
        let scores = combine_explanation_scores(&config_scores, &explanations, 0.2, 0.2).unwrap();
        assert_eq!(scores.len(), 3);
        // e1 wins: strong config AND strong interpretation.
        assert!(scores[1] > scores[0]);
        assert!(scores[1] > scores[2]);
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn backward_ignorance_defers_to_forward() {
        let config_scores = [0.9, 0.1];
        let explanations = [(0usize, 0.1), (1, 0.9)];
        // Backward fully ignorant: forward config order dominates.
        let scores = combine_explanation_scores(&config_scores, &explanations, 0.1, 1.0).unwrap();
        assert!(scores[0] > scores[1]);
        // Forward fully ignorant: backward order dominates.
        let scores = combine_explanation_scores(&config_scores, &explanations, 1.0, 0.1).unwrap();
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn empty_explanations_ok() {
        assert!(combine_explanation_scores(&[0.5], &[], 0.1, 0.1)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn config_without_explanations_is_skipped() {
        // Config 1 produced no interpretations (empty join path).
        let scores = combine_explanation_scores(&[0.5, 0.5], &[(0, 0.6)], 0.2, 0.2).unwrap();
        assert_eq!(scores.len(), 1);
        assert!(scores[0] > 0.0);
    }
}
