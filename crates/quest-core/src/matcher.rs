//! Keyword ↔ schema-term name matching.
//!
//! The forward module needs "similarity measures, domain compatibilities and
//! semantic matchings" (paper §3) wherever full-text index scores are
//! unavailable — always for table/attribute *name* states, and for every
//! state when the source is hidden. This module scores a normalized keyword
//! against a normalized identifier using, in priority order: exact match,
//! ontology synonymy, token containment, and string similarity (max of
//! trigram-Jaccard and edit similarity) with a noise threshold.

use relstore::index::{edit_similarity, trigram_similarity};

use crate::wrapper::ontology::MiniOntology;

/// Below this string similarity, names are considered unrelated.
pub const SIMILARITY_FLOOR: f64 = 0.55;

/// Score keyword-name similarity in [0, 1]. Both inputs must already be
/// normalized (lowercased, stemmed — see `normalize_keyword` /
/// `normalize_identifier`).
pub fn name_similarity(keyword: &str, name: &str, ontology: &MiniOntology) -> f64 {
    if keyword.is_empty() || name.is_empty() {
        return 0.0;
    }
    if keyword == name {
        return 1.0;
    }
    if ontology.are_synonyms(keyword, name) {
        return 0.9;
    }
    // Multi-token identifiers ("director id", "birth date"): a keyword that
    // equals or is synonymous with one token is a strong partial match.
    let name_tokens: Vec<&str> = name.split(' ').collect();
    if name_tokens.len() > 1 {
        let best_token = name_tokens
            .iter()
            .map(|t| {
                if *t == keyword {
                    0.85
                } else if ontology.are_synonyms(keyword, t) {
                    0.75
                } else {
                    string_similarity(keyword, t) * 0.7
                }
            })
            .fold(0.0f64, f64::max);
        let whole = string_similarity(keyword, name);
        return threshold(best_token.max(whole));
    }
    // Synonym-boosted fuzzy match: a keyword close to a synonym of the name.
    let syn_boost = ontology
        .related_terms(name)
        .iter()
        .map(|syn| string_similarity(keyword, syn) * 0.8)
        .fold(0.0f64, f64::max);
    threshold(string_similarity(keyword, name).max(syn_boost))
}

/// Max of trigram and edit similarity, with a guard for short tokens: a
/// single edit flips most of a 4-letter word ("wind" ↔ "kind" is 0.75 edit
/// similarity but means something entirely different), so short pairs with
/// different initials are capped below the similarity floor.
fn string_similarity(a: &str, b: &str) -> f64 {
    let s = trigram_similarity(a, b).max(edit_similarity(a, b));
    let short = a.chars().count().min(b.chars().count()) <= 4;
    if short && a.chars().next() != b.chars().next() {
        return s.min(SIMILARITY_FLOOR - 0.05);
    }
    s
}

fn threshold(s: f64) -> f64 {
    if s < SIMILARITY_FLOOR {
        0.0
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ont() -> MiniOntology {
        MiniOntology::builtin()
    }

    #[test]
    fn exact_match_is_one() {
        assert_eq!(name_similarity("title", "title", &ont()), 1.0);
    }

    #[test]
    fn synonyms_score_high() {
        let s = name_similarity("film", "movy", &ont()); // "movie" normalized
        assert!((s - 0.9).abs() < 1e-12, "s={s}");
        assert!(name_similarity("nation", "country", &ont()) > 0.85);
    }

    #[test]
    fn unrelated_names_score_zero() {
        assert_eq!(name_similarity("casablanca", "year", &ont()), 0.0);
        assert_eq!(name_similarity("", "year", &ont()), 0.0);
    }

    #[test]
    fn typos_survive_threshold() {
        let s = name_similarity("directr", "director", &ont());
        assert!(s > 0.7, "s={s}");
    }

    #[test]
    fn multi_token_identifiers_match_on_tokens() {
        // keyword "director" vs column "director id"
        let s = name_similarity("director", "director id", &ont());
        assert!((s - 0.85).abs() < 1e-12, "s={s}");
        // synonym of a token
        let s = name_similarity("filmmaker", "director id", &ont());
        assert!((s - 0.75).abs() < 1e-12, "s={s}");
    }

    #[test]
    fn near_miss_below_floor_is_zero() {
        let s = name_similarity("zzz", "title", &ont());
        assert_eq!(s, 0.0);
    }

    #[test]
    fn short_token_edit_traps_are_guarded() {
        // "wind" is one edit from "kind", which is an ontology synonym of
        // "genre" — without the short-token guard this scored 0.6 and beat
        // genuine value mappings.
        assert_eq!(name_similarity("wind", "genre", &ont()), 0.0);
        assert_eq!(name_similarity("wind", "kind", &ont()), 0.0);
        // Same-initial short fuzz still works ("year" vs "years" stems away,
        // "code" vs "core" stays plausible).
        assert!(name_similarity("code", "core", &ont()) > 0.0);
    }

    #[test]
    fn scores_bounded() {
        for (k, n) in [("movy", "movy"), ("film", "movy"), ("directr", "director")] {
            let s = name_similarity(k, n, &ont());
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
