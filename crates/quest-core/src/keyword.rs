//! Keyword query parsing.
//!
//! A keyword query is a sequence of keywords; double-quoted spans form a
//! single phrase keyword ("gone with the wind"). Keywords are normalized
//! through the same tokenizer the indexes use, so a keyword matches at query
//! time exactly what was indexed at setup time.

use relstore::index::normalize_keyword;

use crate::error::QuestError;

/// Upper bound on keywords per query (the Steiner bitmask and the HMM list
/// width keep this small; real keyword queries are 2-5 terms).
pub const MAX_KEYWORDS: usize = 8;

/// One keyword of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Keyword {
    /// The raw text as the user typed it.
    pub raw: String,
    /// Normalized form used for index lookups and matching.
    pub normalized: String,
    /// Whether the keyword was quoted as a phrase.
    pub phrase: bool,
}

/// A parsed keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordQuery {
    /// Keywords in user order (order matters: it is the HMM observation
    /// sequence).
    pub keywords: Vec<Keyword>,
    /// The original query string.
    pub raw: String,
}

impl KeywordQuery {
    /// Parse a raw query string.
    ///
    /// Unquoted whitespace-separated words become individual keywords;
    /// double-quoted spans become phrase keywords. Words that normalize away
    /// (stopwords, punctuation) are dropped. Errors if nothing remains or
    /// more than [`MAX_KEYWORDS`] keywords survive.
    pub fn parse(raw: &str) -> Result<KeywordQuery, QuestError> {
        let mut keywords = Vec::new();
        let mut rest = raw;
        while !rest.is_empty() {
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            if let Some(stripped) = rest.strip_prefix('"') {
                let end = stripped.find('"').unwrap_or(stripped.len());
                let phrase = &stripped[..end];
                push_keyword(&mut keywords, phrase, true);
                rest = &stripped[(end + 1).min(stripped.len())..];
            } else {
                let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                let word = &rest[..end];
                push_keyword(&mut keywords, word, false);
                rest = &rest[end..];
            }
        }
        if keywords.is_empty() {
            return Err(QuestError::EmptyQuery);
        }
        if keywords.len() > MAX_KEYWORDS {
            return Err(QuestError::TooManyKeywords {
                max: MAX_KEYWORDS,
                got: keywords.len(),
            });
        }
        Ok(KeywordQuery {
            keywords,
            raw: raw.to_string(),
        })
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Whether the query is empty (never true after a successful parse).
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// The normalized keyword strings in order.
    pub fn normalized(&self) -> Vec<&str> {
        self.keywords
            .iter()
            .map(|k| k.normalized.as_str())
            .collect()
    }
}

fn push_keyword(out: &mut Vec<Keyword>, raw: &str, phrase: bool) {
    if let Some(normalized) = normalize_keyword(raw) {
        out.push(Keyword {
            raw: raw.to_string(),
            normalized,
            phrase,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_keywords() {
        let q = KeywordQuery::parse("Casablanca director").unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.normalized(), vec!["casablanca", "director"]);
        assert!(!q.keywords[0].phrase);
    }

    #[test]
    fn parses_phrases() {
        let q = KeywordQuery::parse("\"gone with the wind\" director").unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.keywords[0].normalized, "gone wind");
        assert!(q.keywords[0].phrase);
    }

    #[test]
    fn unterminated_quote_is_tolerated() {
        let q = KeywordQuery::parse("\"new york").unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.keywords[0].normalized, "new york");
    }

    #[test]
    fn stopwords_dropped_empty_rejected() {
        assert_eq!(
            KeywordQuery::parse("the of and"),
            Err(QuestError::EmptyQuery)
        );
        assert_eq!(KeywordQuery::parse("   "), Err(QuestError::EmptyQuery));
        assert_eq!(KeywordQuery::parse(""), Err(QuestError::EmptyQuery));
    }

    #[test]
    fn too_many_keywords_rejected() {
        let raw = (0..9)
            .map(|i| format!("kw{i}"))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(matches!(
            KeywordQuery::parse(&raw),
            Err(QuestError::TooManyKeywords { got: 9, .. })
        ));
    }

    #[test]
    fn keyword_order_preserved() {
        let q = KeywordQuery::parse("zebra apple mango").unwrap();
        assert_eq!(q.normalized(), vec!["zebra", "apple", "mango"]);
    }

    #[test]
    fn punctuation_normalizes() {
        let q = KeywordQuery::parse("O'Hara, (1939)").unwrap();
        assert_eq!(q.normalized(), vec!["o hara", "1939"]);
    }
}
