//! [`SearchScratch`]: reusable per-query working memory for the uncached
//! search hot path.
//!
//! One uncached search used to allocate a fresh emission matrix, a fresh
//! list-Viterbi lattice per operating mode, and re-normalize every keyword
//! once per attribute probe. A `SearchScratch` owns all of that state and
//! is threaded through the pipeline —
//!
//! * **forward emission scoring** — prepared keywords
//!   ([`crate::wrapper::PreparedKeyword`]) and the reused emission matrix;
//! * **decoding** — one [`quest_hmm::ListDecoder`] whose flat lattice
//!   buffers serve both HMM operating modes over the *same* emission
//!   matrix, with the admissible top-k prune;
//! * **backward interpretation** — a per-query memo from Steiner terminal
//!   sets to interpretation lists (because distinct configurations of one
//!   query frequently anchor to identical terminals), plus the flat
//!   [`quest_graph::SteinerScratch`] buffers (frontier heap, state tables,
//!   pooled edge lists) reused by the pruned enumeration on a
//!   template-memo miss;
//! * **assembly** — the flattened `(configuration, interpretation)` pair
//!   and score buffers reused while ranking explanations.
//!
//! Results are bit-identical with or without scratch reuse (pinned by
//! `tests/perf_identity.rs`); the scratch only changes where the memory
//! comes from and how much redundant work is skipped. Create one per
//! worker thread (or per engine use-site) and pass it to the `*_with`
//! methods of [`crate::Quest`]; the convenience methods without a scratch
//! argument create a throwaway one per call.

use quest_graph::{NodeId, SteinerScratch};
use quest_hmm::{Emissions, ListDecoder};

use crate::backward::Interpretation;
use crate::wrapper::PreparedKeyword;

/// Reusable buffers for one in-flight search. See the module docs.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Shared list-Viterbi decoder scratch (both operating modes).
    pub(crate) decoder: ListDecoder,
    /// The query's emission matrix, rows reused across queries.
    pub(crate) emissions: Emissions,
    /// One prepared keyword per query keyword.
    pub(crate) prepared: Vec<PreparedKeyword>,
    /// Per-query memo: Steiner terminal set → interpretations. Valid only
    /// within one search (cleared by `Quest::search_query_with`); the
    /// engine state is locked for that duration by every caller.
    pub(crate) steiner_memo: Vec<(Vec<NodeId>, Vec<Interpretation>)>,
    /// Flat graph scratch (frontier heap, state tables, pooled edge lists)
    /// for the pruned Steiner enumeration on template-memo misses.
    pub(crate) steiner: SteinerScratch,
    /// Assembly: flattened `(configuration index, interpretation)` pairs.
    pub(crate) assemble_pairs: Vec<(usize, Interpretation)>,
    /// Assembly: per-configuration scores for the DST combination.
    pub(crate) config_scores: Vec<f64>,
    /// Assembly: `(configuration index, interpretation score)` pairs.
    pub(crate) pair_scores: Vec<(usize, f64)>,
}

impl SearchScratch {
    /// Empty scratch; buffers grow to their steady-state sizes on first
    /// use and are retained afterwards.
    pub fn new() -> SearchScratch {
        SearchScratch::default()
    }

    /// Drop the per-query memo state. [`crate::Quest::search_query_with`]
    /// calls this itself; callers that drive the stage APIs directly
    /// ([`crate::Quest::forward_pass_with`] +
    /// [`crate::Quest::backward_pass_with`], as the serving layer does)
    /// must call it once at the start of each search, because memoized
    /// interpretations are only valid for one engine state.
    pub fn reset_query_state(&mut self) {
        self.steiner_memo.clear();
    }

    /// Memoized interpretations lookup for a terminal set.
    pub(crate) fn memoized_interpretations(
        &self,
        terminals: &[NodeId],
    ) -> Option<&Vec<Interpretation>> {
        self.steiner_memo
            .iter()
            .find(|(t, _)| t.as_slice() == terminals)
            .map(|(_, i)| i)
    }
}
