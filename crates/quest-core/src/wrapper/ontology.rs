//! A small embedded ontology: synonym and hypernym lookup.
//!
//! Stand-in for the "external ontologies" the wrapper consults (paper §1).
//! The engine only needs `related_terms(word)`; this implementation ships
//! curated synonym rings for the three demo domains (movies, bibliography,
//! geography) and supports user extension.

use std::collections::HashMap;

use relstore::index::normalize_keyword;

/// Synonym/hypernym dictionary with normalized keys.
#[derive(Debug, Clone, Default)]
pub struct MiniOntology {
    /// normalized word -> ring id
    ring_of: HashMap<String, usize>,
    /// ring id -> normalized members
    rings: Vec<Vec<String>>,
}

impl MiniOntology {
    /// Empty ontology.
    pub fn new() -> MiniOntology {
        MiniOntology::default()
    }

    /// Ontology preloaded with synonym rings for the QUEST demo domains
    /// (IMDB-like movies, DBLP-like bibliography, Mondial-like geography).
    pub fn builtin() -> MiniOntology {
        let mut o = MiniOntology::new();
        let rings: &[&[&str]] = &[
            // movies
            &["movie", "film", "picture", "feature"],
            &["actor", "actress", "performer", "star", "cast"],
            &["director", "filmmaker"],
            &["genre", "category", "kind"],
            &["title", "name"],
            &["year", "date", "released"],
            &["person", "people", "individual"],
            &["company", "studio", "producer"],
            &["rating", "score", "stars"],
            // bibliography
            &["paper", "article", "publication", "work"],
            &["author", "writer", "creator"],
            &["venue", "conference", "journal", "proceedings"],
            &["citation", "reference", "cites"],
            &["university", "affiliation", "institute", "school"],
            // geography
            &["country", "nation", "state"],
            &["city", "town", "municipality", "metropolis"],
            &["capital", "seat"],
            &["population", "inhabitants", "people"],
            &["river", "stream", "waterway"],
            &["mountain", "peak", "summit"],
            &["language", "tongue"],
            &["religion", "faith"],
            &["organization", "organisation", "union", "alliance"],
            &["border", "boundary", "frontier", "neighbor"],
            &["province", "region", "district", "area"],
            &["economy", "gdp", "economic"],
        ];
        for ring in rings {
            o.add_ring(ring);
        }
        o
    }

    /// Add a ring of mutually synonymous words. Words already present are
    /// merged into the existing ring.
    pub fn add_ring(&mut self, words: &[&str]) {
        let normalized: Vec<String> = words.iter().filter_map(|w| normalize_keyword(w)).collect();
        if normalized.is_empty() {
            return;
        }
        // Reuse an existing ring if any member is known.
        let existing = normalized.iter().find_map(|w| self.ring_of.get(w).copied());
        let rid = existing.unwrap_or_else(|| {
            self.rings.push(Vec::new());
            self.rings.len() - 1
        });
        for w in normalized {
            if self.ring_of.insert(w.clone(), rid).is_none() {
                self.rings[rid].push(w);
            }
        }
    }

    /// All words related to `word` (excluding the word itself). Empty when
    /// unknown.
    pub fn related_terms(&self, word: &str) -> Vec<&str> {
        let Some(norm) = normalize_keyword(word) else {
            return Vec::new();
        };
        match self.ring_of.get(&norm) {
            Some(&rid) => self.rings[rid]
                .iter()
                .filter(|w| **w != norm)
                .map(|s| s.as_str())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Whether two words are synonymous (same ring or equal after
    /// normalization).
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let (Some(na), Some(nb)) = (normalize_keyword(a), normalize_keyword(b)) else {
            return false;
        };
        if na == nb {
            return true;
        }
        match (self.ring_of.get(&na), self.ring_of.get(&nb)) {
            (Some(ra), Some(rb)) => ra == rb,
            _ => false,
        }
    }

    /// Number of distinct words known.
    pub fn word_count(&self) -> usize {
        self.ring_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_demo_domains() {
        let o = MiniOntology::builtin();
        assert!(o.are_synonyms("movie", "film"));
        assert!(o.are_synonyms("author", "writer"));
        assert!(o.are_synonyms("country", "nation"));
        assert!(!o.are_synonyms("movie", "country"));
        assert!(o.word_count() > 50);
    }

    #[test]
    fn normalization_applies() {
        let o = MiniOntology::builtin();
        // Plural and case fold into the ring.
        assert!(o.are_synonyms("Movies", "FILM"));
        assert!(o.are_synonyms("actors", "cast"));
    }

    #[test]
    fn related_terms_exclude_self() {
        let o = MiniOntology::builtin();
        let rel = o.related_terms("director");
        assert!(rel.contains(&"filmmaker"));
        assert!(!rel.contains(&"director"));
        assert!(o.related_terms("xyzzy").is_empty());
    }

    #[test]
    fn rings_merge_on_overlap() {
        let mut o = MiniOntology::new();
        o.add_ring(&["car", "automobile"]);
        o.add_ring(&["automobile", "vehicle"]);
        assert!(o.are_synonyms("car", "vehicle"));
    }

    #[test]
    fn identical_words_are_synonyms_even_unknown() {
        let o = MiniOntology::new();
        assert!(o.are_synonyms("zebra", "zebras")); // co-stem
        assert!(!o.are_synonyms("zebra", "lion"));
    }
}
