//! A small regular-expression engine for schema annotations.
//!
//! The wrapper "exploits regular expressions, schema annotations, database
//! metadata and external ontologies to guess the attributes that can be
//! associated with each keyword" (paper §1). Deep-Web sources expose no
//! index, so the only way to decide whether a keyword *could* be a value of
//! an attribute is to match it against the attribute's declared pattern of
//! admissible values.
//!
//! Supported syntax (full-string match): literals, `.`, classes `\d` `\w`
//! `\s` and their uppercase negations, bracket classes `[a-z0-9_]` with
//! leading `^` negation, quantifiers `*` `+` `?` and `{m,n}`, alternation
//! `|`, and grouping `(...)`. Matching is backtracking over a parsed AST —
//! plenty for admissible-value patterns like `\d{4}` or `[A-Z][a-z]+( [A-Z][a-z]+)*`.

use std::fmt;

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    source: String,
    root: Node,
}

/// Parse/compile errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the source.
    pub position: usize,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for PatternError {}

#[derive(Debug, Clone)]
enum Node {
    /// Sequence of nodes.
    Seq(Vec<Node>),
    /// Alternation.
    Alt(Vec<Node>),
    /// Single character matcher.
    Char(CharClass),
    /// Quantified node: min, max (None = unbounded).
    Repeat(Box<Node>, usize, Option<usize>),
    /// Empty match.
    Empty,
}

#[derive(Debug, Clone)]
enum CharClass {
    Literal(char),
    Any,
    Digit(bool),
    Word(bool),
    Space(bool),
    /// Bracket class: ranges plus negation flag.
    Set {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
}

impl CharClass {
    fn matches(&self, c: char) -> bool {
        match self {
            CharClass::Literal(l) => *l == c,
            CharClass::Any => true,
            CharClass::Digit(neg) => c.is_ascii_digit() != *neg,
            CharClass::Word(neg) => (c.is_alphanumeric() || c == '_') != *neg,
            CharClass::Space(neg) => c.is_whitespace() != *neg,
            CharClass::Set { ranges, negated } => {
                ranges.iter().any(|(lo, hi)| *lo <= c && c <= *hi) != *negated
            }
        }
    }
}

impl Pattern {
    /// Compile a pattern.
    pub fn compile(source: &str) -> Result<Pattern, PatternError> {
        let chars: Vec<char> = source.chars().collect();
        let mut p = Parser {
            chars: &chars,
            pos: 0,
        };
        let root = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(PatternError {
                message: format!("unexpected character `{}`", p.chars[p.pos]),
                position: p.pos,
            });
        }
        Ok(Pattern {
            source: source.to_string(),
            root,
        })
    }

    /// The source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether the pattern matches the *entire* input.
    pub fn is_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        match_node(&self.root, &chars, 0, &mut |pos| pos == chars.len())
    }

    /// Whether the pattern matches anywhere inside the input.
    pub fn is_partial_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        (0..=chars.len()).any(|start| match_node(&self.root, &chars, start, &mut |_| true))
    }
}

/// Backtracking matcher in continuation-passing style: `k(pos)` is invoked
/// for every position the node can finish at.
fn match_node(node: &Node, input: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match node {
        Node::Empty => k(pos),
        Node::Char(c) => {
            if pos < input.len() && c.matches(input[pos]) {
                k(pos + 1)
            } else {
                false
            }
        }
        Node::Seq(nodes) => match_seq(nodes, input, pos, k),
        Node::Alt(alts) => alts.iter().any(|a| match_node(a, input, pos, k)),
        Node::Repeat(inner, min, max) => match_repeat(inner, *min, *max, input, pos, 0, k),
    }
}

fn match_seq(nodes: &[Node], input: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match nodes.split_first() {
        None => k(pos),
        Some((head, tail)) => match_node(head, input, pos, &mut |p| match_seq(tail, input, p, k)),
    }
}

fn match_repeat(
    inner: &Node,
    min: usize,
    max: Option<usize>,
    input: &[char],
    pos: usize,
    count: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    // Greedy: try one more repetition first, then yield.
    let can_more = max.is_none_or(|m| count < m);
    if can_more
        && match_node(inner, input, pos, &mut |p| {
            // Zero-width progress guard: stop expanding on empty matches.
            if p == pos {
                return false;
            }
            match_repeat(inner, min, max, input, p, count + 1, k)
        })
    {
        return true;
    }
    if count >= min {
        return k(pos);
    }
    false
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> PatternError {
        PatternError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> Result<Node, PatternError> {
        let mut alts = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.parse_seq()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("len checked")
        } else {
            Node::Alt(alts)
        })
    }

    fn parse_seq(&mut self) -> Result<Node, PatternError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_quantified()?);
        }
        Ok(match items.len() {
            0 => Node::Empty,
            1 => items.pop().expect("len checked"),
            _ => Node::Seq(items),
        })
    }

    fn parse_quantified(&mut self) -> Result<Node, PatternError> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 0, None))
            }
            Some('+') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 1, None))
            }
            Some('?') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 0, Some(1)))
            }
            Some('{') => {
                self.bump();
                let min = self.parse_number()?;
                let max = if self.peek() == Some(',') {
                    self.bump();
                    if self.peek() == Some('}') {
                        None
                    } else {
                        Some(self.parse_number()?)
                    }
                } else {
                    Some(min)
                };
                if self.bump() != Some('}') {
                    return Err(self.err("expected `}`"));
                }
                if let Some(m) = max {
                    if m < min {
                        return Err(self.err("max repeat below min"));
                    }
                }
                Ok(Node::Repeat(Box::new(atom), min, max))
            }
            _ => Ok(atom),
        }
    }

    fn parse_number(&mut self) -> Result<usize, PatternError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse().map_err(|_| self.err("number too large"))
    }

    fn parse_atom(&mut self) -> Result<Node, PatternError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unterminated group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::Char(CharClass::Any)),
            Some('\\') => {
                let c = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                Ok(Node::Char(match c {
                    'd' => CharClass::Digit(false),
                    'D' => CharClass::Digit(true),
                    'w' => CharClass::Word(false),
                    'W' => CharClass::Word(true),
                    's' => CharClass::Space(false),
                    'S' => CharClass::Space(true),
                    other => CharClass::Literal(other),
                }))
            }
            Some(c @ ('*' | '+' | '?' | '{' | '}')) => {
                Err(self.err(format!("quantifier `{c}` with nothing to repeat")))
            }
            Some(c) => Ok(Node::Char(CharClass::Literal(c))),
        }
    }

    fn parse_class(&mut self) -> Result<Node, PatternError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let c = self.bump().ok_or_else(|| self.err("unterminated class"))?;
            if c == ']' {
                if ranges.is_empty() {
                    return Err(self.err("empty class"));
                }
                break;
            }
            let lo = if c == '\\' {
                let esc = self
                    .bump()
                    .ok_or_else(|| self.err("dangling escape in class"))?;
                // Character-class escapes expand to their ranges.
                match esc {
                    'd' => {
                        ranges.push(('0', '9'));
                        continue;
                    }
                    'w' => {
                        ranges.extend([('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]);
                        continue;
                    }
                    's' => {
                        ranges.extend([(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')]);
                        continue;
                    }
                    other => other,
                }
            } else {
                c
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let hi = self.bump().ok_or_else(|| self.err("unterminated range"))?;
                if hi < lo {
                    return Err(self.err("inverted range"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Node::Char(CharClass::Set { ranges, negated }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, input: &str) -> bool {
        Pattern::compile(pat).unwrap().is_match(input)
    }

    #[test]
    fn literals_and_any() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abx"));
        assert!(!m("abc", "abcd"));
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "axc"));
    }

    #[test]
    fn classes() {
        assert!(m(r"\d\d\d\d", "1939"));
        assert!(!m(r"\d\d\d\d", "19a9"));
        assert!(m(r"\w+", "hello_world1"));
        assert!(!m(r"\w+", "hello world"));
        assert!(m(r"\s", " "));
        assert!(m(r"\D+", "abc"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("a*", ""));
        assert!(m("a*", "aaaa"));
        assert!(m("a+b", "aab"));
        assert!(!m("a+b", "b"));
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
        assert!(m(r"\d{4}", "2013"));
        assert!(!m(r"\d{4}", "201"));
        assert!(!m(r"\d{4}", "20134"));
        assert!(m(r"\d{2,4}", "201"));
        assert!(m(r"a{2,}", "aaaaa"));
        assert!(!m(r"a{2,}", "a"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "dog"));
        assert!(!m("cat|dog", "cow"));
        assert!(m("(ab)+", "ababab"));
        assert!(m("gr(e|a)y", "gray"));
        assert!(m("[A-Z][a-z]+( [A-Z][a-z]+)*", "New York City"));
        assert!(!m("[A-Z][a-z]+( [A-Z][a-z]+)*", "new york"));
    }

    #[test]
    fn bracket_classes() {
        assert!(m("[abc]+", "cab"));
        assert!(!m("[abc]+", "cad"));
        assert!(m("[a-z0-9]+", "abc123"));
        assert!(m("[^0-9]+", "abc"));
        assert!(!m("[^0-9]+", "a1"));
        assert!(m(r"[\d.]+", "3.14"));
    }

    #[test]
    fn partial_match() {
        let p = Pattern::compile(r"\d{4}").unwrap();
        assert!(p.is_partial_match("released in 1939!"));
        assert!(!p.is_partial_match("no digits here"));
        assert!(!p.is_match("released in 1939!"));
    }

    #[test]
    fn parse_errors() {
        assert!(Pattern::compile("(ab").is_err());
        assert!(Pattern::compile("[a-").is_err());
        assert!(Pattern::compile("*a").is_err());
        assert!(Pattern::compile("a{3,1}").is_err());
        assert!(Pattern::compile("a{x}").is_err());
        assert!(Pattern::compile("[]").is_err());
        assert!(Pattern::compile("[z-a]").is_err());
        assert!(Pattern::compile("ab)").is_err());
    }

    #[test]
    fn realistic_annotation_patterns() {
        // Year of release.
        assert!(m(r"(19|20)\d{2}", "1939"));
        assert!(m(r"(19|20)\d{2}", "2013"));
        assert!(!m(r"(19|20)\d{2}", "1839"));
        // ISBN-ish code.
        assert!(m(r"\d{3}-\d-\d{3}-\d{5}", "978-3-540-12345"));
        // Person name.
        let name = r"[A-Z][a-z]+( [A-Z][a-z']+)+";
        assert!(m(name, "Victor Fleming"));
        assert!(!m(name, "victor fleming"));
    }

    #[test]
    fn no_pathological_blowup() {
        // Zero-width repeat guard terminates.
        assert!(m("(a*)*b", "aaab"));
        assert!(!m("(a*)*c", "aaab"));
    }
}
