//! Schema annotations for sources without full access.
//!
//! When full-text indexes cannot be instantiated, "the user is supported in
//! the definition of a schema enriched with the specification, for each
//! attribute, of metadata such as data-type, and regular expression of
//! admissible values" (paper §3). An [`AnnotationSet`] carries that
//! enrichment: per attribute, an optional admissible-value pattern, optional
//! example values, and free-text aliases that extend name matching.

use std::collections::HashMap;

use relstore::{AttrId, Catalog};

use crate::wrapper::pattern::{Pattern, PatternError};

/// Annotation of one attribute.
#[derive(Debug, Clone, Default)]
pub struct AttributeAnnotation {
    /// Pattern of admissible values (full-string match).
    pub value_pattern: Option<Pattern>,
    /// A few example values (normalized at match time).
    pub examples: Vec<String>,
    /// Alternative names users may employ for this attribute.
    pub aliases: Vec<String>,
}

/// Per-attribute annotations for a schema.
#[derive(Debug, Clone, Default)]
pub struct AnnotationSet {
    by_attr: HashMap<AttrId, AttributeAnnotation>,
}

impl AnnotationSet {
    /// Empty set.
    pub fn new() -> AnnotationSet {
        AnnotationSet::default()
    }

    /// Set the admissible-value pattern of an attribute.
    pub fn set_pattern(&mut self, attr: AttrId, pattern: &str) -> Result<(), PatternError> {
        let p = Pattern::compile(pattern)?;
        self.by_attr.entry(attr).or_default().value_pattern = Some(p);
        Ok(())
    }

    /// Add example values for an attribute.
    pub fn add_examples<S: Into<String>>(
        &mut self,
        attr: AttrId,
        examples: impl IntoIterator<Item = S>,
    ) {
        let ann = self.by_attr.entry(attr).or_default();
        ann.examples.extend(examples.into_iter().map(Into::into));
    }

    /// Add name aliases for an attribute.
    pub fn add_aliases<S: Into<String>>(
        &mut self,
        attr: AttrId,
        aliases: impl IntoIterator<Item = S>,
    ) {
        let ann = self.by_attr.entry(attr).or_default();
        ann.aliases.extend(aliases.into_iter().map(Into::into));
    }

    /// Annotation of an attribute, if any.
    pub fn get(&self, attr: AttrId) -> Option<&AttributeAnnotation> {
        self.by_attr.get(&attr)
    }

    /// Number of annotated attributes.
    pub fn len(&self) -> usize {
        self.by_attr.len()
    }

    /// Whether no attribute is annotated.
    pub fn is_empty(&self) -> bool {
        self.by_attr.is_empty()
    }

    /// Heuristic admissibility of `raw_keyword` as a value of `attr`,
    /// in [0, 1], using only metadata — no instance access:
    ///
    /// * a matching value pattern scores 0.9 (partial match 0.6);
    /// * equality with an example value scores 0.8, and a keyword appearing
    ///   as a token of an example (e.g. "modena" in "University of Modena")
    ///   scores 0.7;
    /// * otherwise, data-type compatibility alone scores a weak prior
    ///   (numeric keyword ↔ numeric column 0.3, free text ↔ text column 0.2).
    pub fn admissibility(&self, catalog: &Catalog, attr: AttrId, raw_keyword: &str) -> f64 {
        let kw = raw_keyword.trim();
        if kw.is_empty() {
            return 0.0;
        }
        if let Some(ann) = self.by_attr.get(&attr) {
            if let Some(p) = &ann.value_pattern {
                if p.is_match(kw) {
                    return 0.9;
                }
                if p.is_partial_match(kw) {
                    return 0.6;
                }
                // An explicit pattern that fails is strong negative evidence.
                return 0.0;
            }
            if ann.examples.iter().any(|e| e.eq_ignore_ascii_case(kw)) {
                return 0.8;
            }
            let kw_lower = kw.to_lowercase();
            if ann.examples.iter().any(|e| {
                e.to_lowercase()
                    .split_whitespace()
                    .any(|tok| tok == kw_lower)
            }) {
                return 0.7;
            }
        }
        type_prior(catalog, attr, kw)
    }
}

/// Type-compatibility prior used when no annotation decides.
fn type_prior(catalog: &Catalog, attr: AttrId, kw: &str) -> f64 {
    use relstore::DataType::*;
    let a = catalog.attribute(attr);
    let numeric = kw
        .chars()
        .all(|c| c.is_ascii_digit() || c == '.' || c == '-')
        && kw.chars().any(|c| c.is_ascii_digit());
    match a.data_type {
        Int | Float => {
            if numeric {
                0.3
            } else {
                0.0
            }
        }
        Text => {
            if numeric {
                0.05
            } else {
                0.2
            }
        }
        Date => {
            if relstore::Value::parse(kw, Date).is_some_and(|v| !v.is_null()) {
                0.4
            } else {
                0.0
            }
        }
        Bool => match kw.to_ascii_lowercase().as_str() {
            "true" | "false" | "yes" | "no" => 0.4,
            _ => 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("year", DataType::Int, true, false)
            .unwrap()
            .finish();
        c
    }

    #[test]
    fn pattern_decides_admissibility() {
        let c = catalog();
        let year = c.attr_id("movie", "year").unwrap();
        let mut ann = AnnotationSet::new();
        ann.set_pattern(year, r"(19|20)\d{2}").unwrap();
        assert_eq!(ann.admissibility(&c, year, "1939"), 0.9);
        assert_eq!(ann.admissibility(&c, year, "1839"), 0.0);
        assert_eq!(ann.admissibility(&c, year, "casablanca"), 0.0);
    }

    #[test]
    fn examples_match_case_insensitively() {
        let c = catalog();
        let title = c.attr_id("movie", "title").unwrap();
        let mut ann = AnnotationSet::new();
        ann.add_examples(title, ["Casablanca", "Vertigo"]);
        assert_eq!(ann.admissibility(&c, title, "casablanca"), 0.8);
        // Unknown text still gets the type prior for text columns.
        assert_eq!(ann.admissibility(&c, title, "metropolis"), 0.2);
    }

    #[test]
    fn type_priors_without_annotations() {
        let c = catalog();
        let ann = AnnotationSet::new();
        let year = c.attr_id("movie", "year").unwrap();
        let title = c.attr_id("movie", "title").unwrap();
        assert_eq!(ann.admissibility(&c, year, "1939"), 0.3);
        assert_eq!(ann.admissibility(&c, year, "wind"), 0.0);
        assert_eq!(ann.admissibility(&c, title, "wind"), 0.2);
        assert_eq!(ann.admissibility(&c, title, "1939"), 0.05);
        assert_eq!(ann.admissibility(&c, title, ""), 0.0);
    }

    #[test]
    fn invalid_pattern_is_reported() {
        let c = catalog();
        let year = c.attr_id("movie", "year").unwrap();
        let mut ann = AnnotationSet::new();
        assert!(ann.set_pattern(year, "[oops").is_err());
        assert!(ann.is_empty());
        let _ = c;
    }

    #[test]
    fn aliases_are_stored() {
        let c = catalog();
        let year = c.attr_id("movie", "year").unwrap();
        let mut ann = AnnotationSet::new();
        ann.add_aliases(year, ["released", "release year"]);
        assert_eq!(ann.get(year).unwrap().aliases.len(), 2);
        assert_eq!(ann.len(), 1);
    }
}
