//! Source wrappers: QUEST's only gateway to the data.
//!
//! "QUEST is conceived as a tool working on top of a traditional DBMS,
//! however, it does not rely on a specific implementation of [the search]
//! function: a wrapper has been implemented for cases where this function is
//! not available" (paper §1). The [`SourceWrapper`] trait abstracts the two
//! regimes:
//!
//! * [`FullAccessWrapper`] — owned databases: full-text index scores,
//!   instance statistics, unrestricted SQL execution;
//! * [`DeepWebWrapper`] — hidden sources: emission scores from annotations /
//!   patterns / ontology only, no statistics, and a result-limited endpoint
//!   that requires at least one bound value (a form, in Deep-Web terms).

pub mod annotations;
pub mod ontology;
pub mod pattern;

use relstore::index::KeywordProbe;
use relstore::sql::{execute, has_results, ResultSet, SelectStatement};
use relstore::{AttrId, Catalog, Database, ForeignKey, StoreError};

use crate::keyword::Keyword;
use annotations::AnnotationSet;
use ontology::MiniOntology;

pub use annotations::AttributeAnnotation;
pub use pattern::{Pattern, PatternError};

/// A keyword prepared once per query for repeated [`SourceWrapper`] value
/// probes: the emission pass scores every keyword against every attribute,
/// and preparing pays per-keyword work (tokenization, normalization) once
/// instead of once per `(keyword, attribute)` pair.
///
/// Built by [`SourceWrapper::prepare_keyword`]; scored through
/// [`SourceWrapper::value_score_prepared`], which is bit-identical to
/// [`SourceWrapper::value_score`] on the unprepared keyword.
#[derive(Debug, Clone)]
pub struct PreparedKeyword {
    /// The parsed keyword (raw + normalized forms).
    keyword: Keyword,
    /// Index probe for full-access sources; `None` when the keyword
    /// normalizes away (every index score is 0) or the wrapper has no
    /// index-backed fast path.
    probe: Option<KeywordProbe>,
    /// Fully precomputed per-attribute scores, indexed by `AttrId`.
    /// Partitioned (sharded) wrappers fill this in one scatter per keyword
    /// so the emission pass never re-fans out per attribute; `None` for
    /// wrappers that score on demand.
    value_scores: Option<std::sync::Arc<Vec<f64>>>,
}

impl PreparedKeyword {
    /// Prepare a keyword with a fully precomputed per-attribute score
    /// table (`scores[attr.0]` = the value the wrapper's `value_score`
    /// would return). For wrappers — like a sharded scatter-gather store —
    /// whose per-probe cost is high enough that one batched scatter per
    /// keyword beats per-attribute fan-out.
    pub fn with_value_scores(
        keyword: Keyword,
        scores: std::sync::Arc<Vec<f64>>,
    ) -> PreparedKeyword {
        PreparedKeyword {
            keyword,
            probe: None,
            value_scores: Some(scores),
        }
    }

    /// The underlying keyword.
    pub fn keyword(&self) -> &Keyword {
        &self.keyword
    }

    /// The precomputed per-attribute score table, when one was attached.
    pub fn value_scores(&self) -> Option<&[f64]> {
        self.value_scores.as_deref().map(|v| v.as_slice())
    }
}

/// Uniform access to a relational source, full or hidden.
pub trait SourceWrapper {
    /// The source's schema catalog (always available: extracted from source
    /// catalogues or user-defined for hidden sources).
    fn catalog(&self) -> &Catalog;

    /// Likelihood in [0, 1] that `keyword` is a value of `attr` — the
    /// paper's search function over full-text indexes, or its metadata-based
    /// surrogate for hidden sources.
    fn value_score(&self, attr: AttrId, keyword: &Keyword) -> f64;

    /// Prepare a keyword for repeated [`SourceWrapper::value_score_prepared`]
    /// probes. Wrappers that override this to attach a fast-path probe must
    /// also override `value_score_prepared` to consume it.
    fn prepare_keyword(&self, keyword: &Keyword) -> PreparedKeyword {
        PreparedKeyword {
            keyword: keyword.clone(),
            probe: None,
            value_scores: None,
        }
    }

    /// [`SourceWrapper::value_score`] for a keyword prepared with
    /// [`SourceWrapper::prepare_keyword`] — bit-identical results, minus the
    /// per-probe normalization work.
    fn value_score_prepared(&self, attr: AttrId, prepared: &PreparedKeyword) -> f64 {
        self.value_score(attr, &prepared.keyword)
    }

    /// [`SourceWrapper::value_score`] through the source's *reference*
    /// (pre-optimization) scoring path, when one is kept: the baseline the
    /// hot path is verified against bit for bit (`tests/perf_identity.rs`)
    /// and measured against in the committed pipeline benchmark. Defaults
    /// to `value_score`.
    fn value_score_reference(&self, attr: AttrId, keyword: &Keyword) -> f64 {
        self.value_score(attr, keyword)
    }

    /// Normalized mutual information of a foreign-key join, when instance
    /// statistics are available.
    fn join_informativeness(&self, fk: ForeignKey) -> Option<f64>;

    /// Execute a generated SQL statement.
    fn execute(&self, stmt: &SelectStatement) -> Result<ResultSet, StoreError>;

    /// Whether the statement returns at least one row.
    fn has_results(&self, stmt: &SelectStatement) -> Result<bool, StoreError>;

    /// Whether the instance is directly readable (indexes, statistics).
    fn has_instance_access(&self) -> bool;

    /// Row count of a table, when the instance is readable.
    fn table_rows(&self, _table: relstore::TableId) -> Option<u64> {
        None
    }

    /// The ontology used for semantic name matching.
    fn ontology(&self) -> &MiniOntology;

    /// Schema annotations, when defined.
    fn annotations(&self) -> Option<&AnnotationSet> {
        None
    }

    /// Number of physical partitions behind this wrapper: 1 for ordinary
    /// single-store wrappers, N for a sharded scatter-gather store (the
    /// serving layer surfaces this in its stats).
    fn shard_count(&self) -> usize {
        1
    }
}

/// Wrapper over a fully accessible database.
#[derive(Debug, Clone)]
pub struct FullAccessWrapper {
    db: Database,
    ontology: MiniOntology,
}

impl FullAccessWrapper {
    /// Wrap a database. Runs the setup phase (`finalize`) if the caller has
    /// not already.
    pub fn new(mut db: Database) -> FullAccessWrapper {
        if !db.is_finalized() {
            db.finalize();
        }
        FullAccessWrapper {
            db,
            ontology: MiniOntology::builtin(),
        }
    }

    /// Replace the ontology.
    pub fn with_ontology(mut self, ontology: MiniOntology) -> FullAccessWrapper {
        self.ontology = ontology;
        self
    }

    /// The wrapped database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the wrapped database, for live-data mutation.
    ///
    /// The database maintains its own indexes and statistics incrementally,
    /// but an engine built *over* this wrapper caches instance-derived
    /// state (MI-weighted schema-graph edges); after mutating, call
    /// [`Quest::resync`](crate::Quest::resync) — or mutate through
    /// [`Quest::mutate_source`](crate::Quest::mutate_source), which does it
    /// for you.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }
}

impl SourceWrapper for FullAccessWrapper {
    fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }

    fn value_score(&self, attr: AttrId, keyword: &Keyword) -> f64 {
        self.db.search_score(attr, &keyword.normalized)
    }

    fn prepare_keyword(&self, keyword: &Keyword) -> PreparedKeyword {
        PreparedKeyword {
            keyword: keyword.clone(),
            probe: self.db.prepare_probe(&keyword.normalized),
            value_scores: None,
        }
    }

    fn value_score_prepared(&self, attr: AttrId, prepared: &PreparedKeyword) -> f64 {
        match &prepared.probe {
            Some(probe) => self.db.search_score_probe(attr, probe),
            // The keyword normalized away: every index score is 0, which is
            // exactly what the unprepared path returns for it.
            None => 0.0,
        }
    }

    fn value_score_reference(&self, attr: AttrId, keyword: &Keyword) -> f64 {
        self.db.search_score_reference(attr, &keyword.normalized)
    }

    fn join_informativeness(&self, fk: ForeignKey) -> Option<f64> {
        self.db.fk_stats(fk).map(|s| s.nmi)
    }

    fn execute(&self, stmt: &SelectStatement) -> Result<ResultSet, StoreError> {
        execute(&self.db, stmt)
    }

    fn has_results(&self, stmt: &SelectStatement) -> Result<bool, StoreError> {
        has_results(&self.db, stmt)
    }

    fn has_instance_access(&self) -> bool {
        true
    }

    fn table_rows(&self, table: relstore::TableId) -> Option<u64> {
        Some(self.db.row_count(table) as u64)
    }

    fn ontology(&self) -> &MiniOntology {
        &self.ontology
    }
}

/// Wrapper simulating a Deep-Web source: schema and annotations are visible,
/// the instance is reachable only through a result-limited query endpoint.
#[derive(Debug, Clone)]
pub struct DeepWebWrapper {
    db: Database,
    annotations: AnnotationSet,
    ontology: MiniOntology,
    result_limit: usize,
}

impl DeepWebWrapper {
    /// Wrap a database as a hidden source with the given annotations.
    /// `result_limit` caps every endpoint response (typical form endpoints
    /// return one page).
    pub fn new(db: Database, annotations: AnnotationSet, result_limit: usize) -> DeepWebWrapper {
        DeepWebWrapper {
            db,
            annotations,
            ontology: MiniOntology::builtin(),
            result_limit: result_limit.max(1),
        }
    }

    /// Replace the ontology.
    pub fn with_ontology(mut self, ontology: MiniOntology) -> DeepWebWrapper {
        self.ontology = ontology;
        self
    }
}

impl SourceWrapper for DeepWebWrapper {
    fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }

    fn value_score(&self, attr: AttrId, keyword: &Keyword) -> f64 {
        // No index: decide from metadata only. Use the raw keyword — the
        // pattern describes surface forms, not stemmed tokens.
        self.annotations
            .admissibility(self.db.catalog(), attr, &keyword.raw)
    }

    fn join_informativeness(&self, _fk: ForeignKey) -> Option<f64> {
        None
    }

    fn execute(&self, stmt: &SelectStatement) -> Result<ResultSet, StoreError> {
        if stmt.predicates.is_empty() {
            return Err(StoreError::InvalidQuery(
                "deep web endpoint requires at least one bound value".into(),
            ));
        }
        let mut limited = stmt.clone();
        let cap = limited
            .limit
            .map_or(self.result_limit, |l| l.min(self.result_limit));
        limited.limit = Some(cap);
        execute(&self.db, &limited)
    }

    fn has_results(&self, stmt: &SelectStatement) -> Result<bool, StoreError> {
        if stmt.predicates.is_empty() {
            return Err(StoreError::InvalidQuery(
                "deep web endpoint requires at least one bound value".into(),
            ));
        }
        has_results(&self.db, stmt)
    }

    fn has_instance_access(&self) -> bool {
        false
    }

    fn ontology(&self) -> &MiniOntology {
        &self.ontology
    }

    fn annotations(&self) -> Option<&AnnotationSet> {
        Some(&self.annotations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyword::KeywordQuery;
    use relstore::sql::Predicate;
    use relstore::{DataType, Row};

    fn db() -> Database {
        let mut c = Catalog::new();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("year", DataType::Int, true, false)
            .unwrap()
            .finish();
        let mut d = Database::new(c).unwrap();
        d.insert(
            "movie",
            Row::new(vec![1.into(), "Casablanca".into(), 1942.into()]),
        )
        .unwrap();
        d.insert(
            "movie",
            Row::new(vec![2.into(), "Gone with the Wind".into(), 1939.into()]),
        )
        .unwrap();
        d.finalize();
        d
    }

    fn kw(s: &str) -> Keyword {
        KeywordQuery::parse(s).unwrap().keywords.remove(0)
    }

    #[test]
    fn full_wrapper_scores_from_index() {
        let w = FullAccessWrapper::new(db());
        let title = w.catalog().attr_id("movie", "title").unwrap();
        assert!(w.value_score(title, &kw("casablanca")) > 0.0);
        assert_eq!(w.value_score(title, &kw("nonexistent")), 0.0);
        assert!(w.has_instance_access());
    }

    #[test]
    fn full_wrapper_finalizes_lazily() {
        let mut c = Catalog::new();
        c.define_table("t")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .finish();
        let d = Database::new(c).unwrap(); // not finalized
        let w = FullAccessWrapper::new(d);
        assert!(w.database().is_finalized());
    }

    #[test]
    fn deep_web_scores_from_annotations() {
        let d = db();
        let year = d.catalog().attr_id("movie", "year").unwrap();
        let title = d.catalog().attr_id("movie", "title").unwrap();
        let mut ann = AnnotationSet::new();
        ann.set_pattern(year, r"(19|20)\d{2}").unwrap();
        let w = DeepWebWrapper::new(d, ann, 10);
        assert_eq!(w.value_score(year, &kw("1939")), 0.9);
        assert_eq!(w.value_score(year, &kw("wind")), 0.0);
        // Text attribute falls back to the type prior.
        assert_eq!(w.value_score(title, &kw("wind")), 0.2);
        assert!(!w.has_instance_access());
        assert!(w
            .join_informativeness(ForeignKey {
                from: year,
                to: title
            })
            .is_none());
    }

    #[test]
    fn deep_web_endpoint_requires_binding() {
        let d = db();
        let movie = d.catalog().table_id("movie").unwrap();
        let title = d.catalog().attr_id("movie", "title").unwrap();
        let w = DeepWebWrapper::new(d, AnnotationSet::new(), 1);
        let open_scan = SelectStatement::scan(movie);
        assert!(w.execute(&open_scan).is_err());
        assert!(w.has_results(&open_scan).is_err());
        let mut bound = SelectStatement::scan(movie);
        bound.predicates.push(Predicate::Contains {
            attr: title,
            keyword: "wind".into(),
        });
        let rs = w.execute(&bound).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn deep_web_limits_results() {
        let d = db();
        let movie = d.catalog().table_id("movie").unwrap();
        let year = d.catalog().attr_id("movie", "year").unwrap();
        let w = DeepWebWrapper::new(d, AnnotationSet::new(), 1);
        let mut stmt = SelectStatement::scan(movie);
        stmt.predicates.push(Predicate::Compare {
            attr: year,
            op: relstore::sql::CompareOp::Ge,
            value: relstore::Value::Int(1900),
        });
        // Two rows qualify; the endpoint caps at 1.
        assert_eq!(w.execute(&stmt).unwrap().len(), 1);
    }

    #[test]
    fn full_wrapper_exposes_join_stats() {
        let mut c = Catalog::new();
        c.define_table("b")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .finish();
        c.define_table("a")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("b_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("a", "b_id", "b").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("b", Row::new(vec![1.into()])).unwrap();
        d.insert("a", Row::new(vec![1.into(), 1.into()])).unwrap();
        d.finalize();
        let fk = d.catalog().foreign_keys()[0];
        let w = FullAccessWrapper::new(d);
        assert!(w.join_informativeness(fk).is_some());
    }
}
