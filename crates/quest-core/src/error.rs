//! Unified error type for the QUEST engine.

use std::fmt;

/// Errors raised by the QUEST engine.
#[derive(Debug, Clone, PartialEq)]
pub enum QuestError {
    /// The keyword query normalized to nothing.
    EmptyQuery,
    /// The query has more keywords than the engine supports.
    TooManyKeywords {
        /// Maximum supported.
        max: usize,
        /// Received.
        got: usize,
    },
    /// No configuration could be found for the query.
    NoConfiguration,
    /// Storage engine error.
    Store(relstore::StoreError),
    /// HMM error.
    Hmm(quest_hmm::HmmError),
    /// Graph / Steiner error.
    Graph(quest_graph::GraphError),
    /// Dempster-Shafer error.
    Dst(quest_dst::DstError),
    /// Configuration parameter out of range.
    BadParameter(String),
}

impl fmt::Display for QuestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuestError::EmptyQuery => write!(f, "keyword query is empty after normalization"),
            QuestError::TooManyKeywords { max, got } => {
                write!(f, "too many keywords: {got} (max {max})")
            }
            QuestError::NoConfiguration => write!(f, "no configuration found for the query"),
            QuestError::Store(e) => write!(f, "store: {e}"),
            QuestError::Hmm(e) => write!(f, "hmm: {e}"),
            QuestError::Graph(e) => write!(f, "graph: {e}"),
            QuestError::Dst(e) => write!(f, "dst: {e}"),
            QuestError::BadParameter(m) => write!(f, "bad parameter: {m}"),
        }
    }
}

impl std::error::Error for QuestError {}

impl From<relstore::StoreError> for QuestError {
    fn from(e: relstore::StoreError) -> Self {
        QuestError::Store(e)
    }
}
impl From<quest_hmm::HmmError> for QuestError {
    fn from(e: quest_hmm::HmmError) -> Self {
        QuestError::Hmm(e)
    }
}
impl From<quest_graph::GraphError> for QuestError {
    fn from(e: quest_graph::GraphError) -> Self {
        QuestError::Graph(e)
    }
}
impl From<quest_dst::DstError> for QuestError {
    fn from(e: quest_dst::DstError) -> Self {
        QuestError::Dst(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: QuestError = relstore::StoreError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("store"));
        let e: QuestError = quest_hmm::HmmError::Empty.into();
        assert!(e.to_string().contains("hmm"));
        let e: QuestError = quest_graph::GraphError::NoTerminals.into();
        assert!(e.to_string().contains("graph"));
        let e: QuestError = quest_dst::DstError::ZeroMass.into();
        assert!(e.to_string().contains("dst"));
        assert!(QuestError::TooManyKeywords { max: 8, got: 9 }
            .to_string()
            .contains('9'));
    }
}
