//! Database terms and the HMM state vocabulary.
//!
//! The forward module's HMM "contains a state for each database element,
//! i.e., there is a state for each table, attribute and attribute domain"
//! (paper §3). A [`DbTerm`] is one such element; the [`Vocabulary`] assigns
//! every term a dense state index and carries the display names used for
//! keyword-to-name matching.

use std::collections::HashMap;

use relstore::{AttrId, Catalog, TableId};

/// A database element a keyword can map to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DbTerm {
    /// The name of a table ("the user means this relation").
    Table(TableId),
    /// The name of an attribute ("the user means this column").
    Attribute(AttrId),
    /// A value in the domain of an attribute ("the keyword is data stored in
    /// this column").
    Domain(AttrId),
}

impl DbTerm {
    /// The attribute that anchors this term in the schema graph: the
    /// attribute itself for attribute/domain terms, the table's primary key
    /// for table terms.
    pub fn anchor_attr(&self, catalog: &Catalog) -> AttrId {
        match self {
            DbTerm::Table(t) => catalog
                .single_pk(*t)
                .unwrap_or_else(|| catalog.table(*t).attributes[0]),
            DbTerm::Attribute(a) | DbTerm::Domain(a) => *a,
        }
    }

    /// The table this term lives in.
    pub fn table(&self, catalog: &Catalog) -> TableId {
        match self {
            DbTerm::Table(t) => *t,
            DbTerm::Attribute(a) | DbTerm::Domain(a) => catalog.attribute(*a).table,
        }
    }

    /// Human-readable rendering, e.g. `movie`, `movie.title`,
    /// `movie.title::value`.
    pub fn describe(&self, catalog: &Catalog) -> String {
        match self {
            DbTerm::Table(t) => catalog.table(*t).name.clone(),
            DbTerm::Attribute(a) => catalog.qualified_name(*a),
            DbTerm::Domain(a) => format!("{}::value", catalog.qualified_name(*a)),
        }
    }
}

/// Dense numbering of all database terms: the HMM state space.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    terms: Vec<DbTerm>,
    index: HashMap<DbTerm, usize>,
    /// Normalized name tokens per state (for metadata matching).
    names: Vec<String>,
}

impl Vocabulary {
    /// Extract the vocabulary from a catalog: one `Table` term per table,
    /// one `Attribute` and one `Domain` term per attribute.
    pub fn from_catalog(catalog: &Catalog) -> Vocabulary {
        let mut terms = Vec::new();
        let mut names = Vec::new();
        for t in catalog.tables() {
            terms.push(DbTerm::Table(t.id));
            names.push(normalize_identifier(&t.name));
        }
        for a in catalog.attributes() {
            terms.push(DbTerm::Attribute(a.id));
            names.push(normalize_identifier(&a.name));
        }
        for a in catalog.attributes() {
            terms.push(DbTerm::Domain(a.id));
            names.push(normalize_identifier(&a.name));
        }
        let index = terms.iter().enumerate().map(|(i, t)| (*t, i)).collect();
        Vocabulary {
            terms,
            index,
            names,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty (empty catalog).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Term of a state index.
    pub fn term(&self, state: usize) -> DbTerm {
        self.terms[state]
    }

    /// State index of a term.
    pub fn state(&self, term: DbTerm) -> Option<usize> {
        self.index.get(&term).copied()
    }

    /// All terms in state order.
    pub fn terms(&self) -> &[DbTerm] {
        &self.terms
    }

    /// Normalized identifier name of a state (for similarity matching).
    pub fn name(&self, state: usize) -> &str {
        &self.names[state]
    }
}

/// Normalize a SQL identifier for matching: lowercase, underscores and
/// camelCase boundaries become spaces, then the shared tokenizer pipeline.
pub fn normalize_identifier(ident: &str) -> String {
    let mut spaced = String::with_capacity(ident.len() + 4);
    let chars: Vec<char> = ident.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' {
            spaced.push(' ');
        } else {
            if c.is_uppercase() && i > 0 && chars[i - 1].is_lowercase() {
                spaced.push(' ');
            }
            spaced.push(c);
        }
    }
    relstore::index::tokenize(&spaced).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("fullName", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        c
    }

    #[test]
    fn vocabulary_covers_all_elements() {
        let c = catalog();
        let v = Vocabulary::from_catalog(&c);
        // 2 tables + 5 attributes + 5 domains
        assert_eq!(v.len(), 12);
        let t = DbTerm::Table(c.table_id("movie").unwrap());
        let s = v.state(t).unwrap();
        assert_eq!(v.term(s), t);
        assert_eq!(v.name(s), "movy"); // stemmed
    }

    #[test]
    fn identifier_normalization() {
        assert_eq!(normalize_identifier("director_id"), "director id");
        assert_eq!(normalize_identifier("fullName"), "full name");
        assert_eq!(normalize_identifier("Title"), "title");
        assert_eq!(normalize_identifier("birth-date"), "birth date");
    }

    #[test]
    fn anchor_attributes() {
        let c = catalog();
        let movie = c.table_id("movie").unwrap();
        let title = c.attr_id("movie", "title").unwrap();
        assert_eq!(
            DbTerm::Table(movie).anchor_attr(&c),
            c.attr_id("movie", "id").unwrap()
        );
        assert_eq!(DbTerm::Attribute(title).anchor_attr(&c), title);
        assert_eq!(DbTerm::Domain(title).anchor_attr(&c), title);
        assert_eq!(DbTerm::Domain(title).table(&c), movie);
    }

    #[test]
    fn describe_terms() {
        let c = catalog();
        let title = c.attr_id("movie", "title").unwrap();
        assert_eq!(DbTerm::Attribute(title).describe(&c), "movie.title");
        assert_eq!(DbTerm::Domain(title).describe(&c), "movie.title::value");
        assert_eq!(
            DbTerm::Table(c.table_id("person").unwrap()).describe(&c),
            "person"
        );
    }
}
