//! Evaluation metrics against gold-standard SQL.
//!
//! The demo paper reports no numeric tables, so the reproduction pins its
//! claims to standard retrieval metrics over workloads with known intended
//! SQL: hit@k (precision at rank), mean reciprocal rank, and per-stage
//! accuracy. Two statements are considered the same answer when they are
//! *semantically equivalent* for QUEST's purposes: same table set, same join
//! set, and same keyword predicates — projection differences are cosmetic.

use std::collections::HashSet;

use relstore::sql::{Predicate, SelectStatement};

/// Whether two statements denote the same answer (table set, join set and
/// predicate multiset all equal; projection and LIMIT ignored).
pub fn statements_equivalent(a: &SelectStatement, b: &SelectStatement) -> bool {
    let ta: HashSet<_> = a.from.iter().copied().collect();
    let tb: HashSet<_> = b.from.iter().copied().collect();
    if ta != tb {
        return false;
    }
    let ja: HashSet<_> = a
        .joins
        .iter()
        .map(|j| ordered(j.left.0, j.right.0))
        .collect();
    let jb: HashSet<_> = b
        .joins
        .iter()
        .map(|j| ordered(j.left.0, j.right.0))
        .collect();
    if ja != jb {
        return false;
    }
    let mut pa = predicate_keys(&a.predicates);
    let mut pb = predicate_keys(&b.predicates);
    pa.sort();
    pb.sort();
    pa == pb
}

fn ordered(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn predicate_keys(ps: &[Predicate]) -> Vec<String> {
    ps.iter()
        .map(|p| match p {
            Predicate::Contains { attr, keyword } => format!("c:{}:{}", attr.0, keyword),
            Predicate::Compare { attr, op, value } => {
                format!("x:{}:{}:{}", attr.0, op.sql(), value.to_sql_literal())
            }
            Predicate::IsNull { attr, negated } => format!("n:{}:{}", attr.0, negated),
        })
        .collect()
}

/// Rank (1-based) of the first relevant item, given a relevance mask over a
/// ranked list.
pub fn first_hit_rank(relevant: &[bool]) -> Option<usize> {
    relevant.iter().position(|r| *r).map(|p| p + 1)
}

/// Reciprocal rank of a single ranked list (0 when no hit).
pub fn reciprocal_rank(relevant: &[bool]) -> f64 {
    first_hit_rank(relevant).map_or(0.0, |r| 1.0 / r as f64)
}

/// Hit@k: whether any of the first `k` items is relevant.
pub fn hit_at_k(relevant: &[bool], k: usize) -> bool {
    relevant.iter().take(k).any(|r| *r)
}

/// Aggregated workload metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadMetrics {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Fraction with a relevant answer at rank 1.
    pub hit_at_1: f64,
    /// Fraction with a relevant answer in the top 3.
    pub hit_at_3: f64,
    /// Fraction with a relevant answer anywhere in the returned list.
    pub hit_at_k: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
}

/// Aggregate per-query relevance masks into workload metrics.
pub fn aggregate(masks: &[Vec<bool>]) -> WorkloadMetrics {
    let n = masks.len();
    if n == 0 {
        return WorkloadMetrics::default();
    }
    let mut m = WorkloadMetrics {
        queries: n,
        ..Default::default()
    };
    for mask in masks {
        if hit_at_k(mask, 1) {
            m.hit_at_1 += 1.0;
        }
        if hit_at_k(mask, 3) {
            m.hit_at_3 += 1.0;
        }
        if hit_at_k(mask, mask.len().max(1)) {
            m.hit_at_k += 1.0;
        }
        m.mrr += reciprocal_rank(mask);
    }
    let nf = n as f64;
    m.hit_at_1 /= nf;
    m.hit_at_3 /= nf;
    m.hit_at_k /= nf;
    m.mrr /= nf;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::sql::{JoinCondition, Projection};
    use relstore::{AttrId, TableId};

    fn stmt(tables: &[u32], joins: &[(u32, u32)], kws: &[(u32, &str)]) -> SelectStatement {
        SelectStatement {
            projection: Projection::Star,
            from: tables.iter().map(|t| TableId(*t)).collect(),
            joins: joins
                .iter()
                .map(|(a, b)| JoinCondition {
                    left: AttrId(*a),
                    right: AttrId(*b),
                })
                .collect(),
            predicates: kws
                .iter()
                .map(|(a, k)| Predicate::Contains {
                    attr: AttrId(*a),
                    keyword: k.to_string(),
                })
                .collect(),
            distinct: true,
            limit: None,
        }
    }

    #[test]
    fn equivalence_ignores_order_projection_limit() {
        let a = stmt(&[0, 1], &[(4, 0)], &[(3, "wind"), (1, "flem")]);
        let mut b = stmt(&[1, 0], &[(0, 4)], &[(1, "flem"), (3, "wind")]);
        b.projection = Projection::Attrs(vec![AttrId(3)]);
        b.limit = Some(5);
        b.distinct = false;
        assert!(statements_equivalent(&a, &b));
    }

    #[test]
    fn equivalence_detects_differences() {
        let a = stmt(&[0, 1], &[(4, 0)], &[(3, "wind")]);
        let b = stmt(&[0, 1], &[(4, 0)], &[(3, "oz")]);
        assert!(!statements_equivalent(&a, &b));
        let c = stmt(&[0], &[], &[(3, "wind")]);
        assert!(!statements_equivalent(&a, &c));
        let d = stmt(&[0, 1], &[], &[(3, "wind")]);
        assert!(!statements_equivalent(&a, &d));
    }

    #[test]
    fn rank_metrics() {
        assert_eq!(first_hit_rank(&[false, true, false]), Some(2));
        assert_eq!(first_hit_rank(&[false, false]), None);
        assert_eq!(reciprocal_rank(&[false, true]), 0.5);
        assert_eq!(reciprocal_rank(&[]), 0.0);
        assert!(hit_at_k(&[false, true], 2));
        assert!(!hit_at_k(&[false, true], 1));
    }

    #[test]
    fn aggregation() {
        let masks = vec![
            vec![true, false],
            vec![false, true],
            vec![false, false],
            vec![false, false, true],
        ];
        let m = aggregate(&masks);
        assert_eq!(m.queries, 4);
        assert!((m.hit_at_1 - 0.25).abs() < 1e-12);
        assert!((m.hit_at_3 - 0.75).abs() < 1e-12);
        assert!((m.mrr - (1.0 + 0.5 + 0.0 + 1.0 / 3.0) / 4.0).abs() < 1e-12);
        assert_eq!(aggregate(&[]), WorkloadMetrics::default());
    }
}
