//! A-priori semantic heuristics.
//!
//! In the a-priori operating mode "the transition probabilities are computed
//! by using heuristic rules that take into account the semantic relationships
//! that exist among the database terms (aggregation, generalization and
//! inclusion relationships). The goal of these rules is to foster the
//! transition between database terms belonging to the same table and
//! belonging to tables connected through foreign keys" (paper §3).
//!
//! This module classifies term pairs into those relationships and assigns
//! the transition weights the a-priori HMM is built from.

use relstore::{Catalog, TableId};

use crate::term::{DbTerm, Vocabulary};
use crate::wrapper::ontology::MiniOntology;

/// The semantic relationship between two database terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relationship {
    /// Same element (self transition).
    Identity,
    /// Aggregation: a table and one of its attributes/domains, or an
    /// attribute and its own domain.
    Aggregation,
    /// Same-table siblings (two attributes or domains of one table).
    SameTable,
    /// Inclusion: terms linked through a primary/foreign key pair.
    Inclusion,
    /// Generalization: tables whose names are ontology synonyms (modelling
    /// is-a naming conventions).
    Generalization,
    /// No recognized relationship.
    Unrelated,
}

/// Transition weights per relationship, plus initial-state weights.
/// These are *weights*, normalized into distributions by `Hmm::from_weights`.
#[derive(Debug, Clone)]
pub struct SemanticRules {
    /// Self transitions (rare: two keywords meaning the same element).
    pub identity: f64,
    /// Table → its attribute, attribute → its domain, etc.
    pub aggregation: f64,
    /// Siblings within one table.
    pub same_table: f64,
    /// Across a PK/FK link.
    pub inclusion: f64,
    /// Synonymous table names.
    pub generalization: f64,
    /// Anything else (smoothing floor; must be positive for ergodicity).
    pub unrelated: f64,
    /// Initial weight of table states.
    pub init_table: f64,
    /// Initial weight of attribute states.
    pub init_attribute: f64,
    /// Initial weight of domain states (keywords are most often values).
    pub init_domain: f64,
}

impl Default for SemanticRules {
    fn default() -> Self {
        SemanticRules {
            identity: 0.05,
            aggregation: 1.0,
            same_table: 0.5,
            inclusion: 0.7,
            generalization: 0.3,
            unrelated: 0.02,
            init_table: 1.0,
            init_attribute: 0.8,
            init_domain: 1.2,
        }
    }
}

impl SemanticRules {
    /// Weight of a relationship.
    pub fn weight(&self, rel: Relationship) -> f64 {
        match rel {
            Relationship::Identity => self.identity,
            Relationship::Aggregation => self.aggregation,
            Relationship::SameTable => self.same_table,
            Relationship::Inclusion => self.inclusion,
            Relationship::Generalization => self.generalization,
            Relationship::Unrelated => self.unrelated,
        }
    }

    /// Initial weight of a term.
    pub fn initial_weight(&self, term: DbTerm) -> f64 {
        match term {
            DbTerm::Table(_) => self.init_table,
            DbTerm::Attribute(_) => self.init_attribute,
            DbTerm::Domain(_) => self.init_domain,
        }
    }
}

/// Whether two tables are connected by at least one foreign key (either
/// direction).
pub fn tables_fk_connected(catalog: &Catalog, a: TableId, b: TableId) -> bool {
    catalog.foreign_keys().iter().any(|fk| {
        let ft = catalog.attribute(fk.from).table;
        let tt = catalog.attribute(fk.to).table;
        (ft == a && tt == b) || (ft == b && tt == a)
    })
}

/// Classify the semantic relationship between two terms.
pub fn classify(
    catalog: &Catalog,
    ontology: &MiniOntology,
    vocab: &Vocabulary,
    from: DbTerm,
    to: DbTerm,
) -> Relationship {
    if from == to {
        return Relationship::Identity;
    }
    let ta = from.table(catalog);
    let tb = to.table(catalog);
    if ta == tb {
        // Attribute and its own domain, or table and its members.
        let aggregation = match (from, to) {
            (DbTerm::Attribute(x), DbTerm::Domain(y))
            | (DbTerm::Domain(x), DbTerm::Attribute(y)) => x == y,
            (DbTerm::Table(_), _) | (_, DbTerm::Table(_)) => true,
            _ => false,
        };
        return if aggregation {
            Relationship::Aggregation
        } else {
            Relationship::SameTable
        };
    }
    if tables_fk_connected(catalog, ta, tb) {
        return Relationship::Inclusion;
    }
    // Generalization heuristic: synonymous table names.
    if let (Some(sa), Some(sb)) = (
        vocab.state(DbTerm::Table(ta)),
        vocab.state(DbTerm::Table(tb)),
    ) {
        if ontology.are_synonyms(vocab.name(sa), vocab.name(sb)) {
            return Relationship::Generalization;
        }
    }
    Relationship::Unrelated
}

/// Build the full a-priori transition weight matrix (row-major, `n*n`) and
/// the initial weight vector over the vocabulary's states.
pub fn apriori_weights(
    catalog: &Catalog,
    ontology: &MiniOntology,
    vocab: &Vocabulary,
    rules: &SemanticRules,
) -> (Vec<f64>, Vec<f64>) {
    let n = vocab.len();
    let mut initial = Vec::with_capacity(n);
    for s in 0..n {
        initial.push(rules.initial_weight(vocab.term(s)));
    }
    let mut trans = vec![0.0; n * n];
    for i in 0..n {
        let from = vocab.term(i);
        for j in 0..n {
            let to = vocab.term(j);
            let rel = classify(catalog, ontology, vocab, from, to);
            trans[i * n + j] = rules.weight(rel);
        }
    }
    (initial, trans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.define_table("country")
            .unwrap()
            .pk("code", DataType::Text)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("nation")
            .unwrap()
            .pk("code", DataType::Text)
            .unwrap()
            .col("label", DataType::Text)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        c
    }

    fn setup() -> (Catalog, MiniOntology, Vocabulary) {
        let c = catalog();
        let v = Vocabulary::from_catalog(&c);
        (c, MiniOntology::builtin(), v)
    }

    #[test]
    fn classifies_aggregation() {
        let (c, o, v) = setup();
        let movie = c.table_id("movie").unwrap();
        let title = c.attr_id("movie", "title").unwrap();
        assert_eq!(
            classify(&c, &o, &v, DbTerm::Table(movie), DbTerm::Attribute(title)),
            Relationship::Aggregation
        );
        assert_eq!(
            classify(&c, &o, &v, DbTerm::Attribute(title), DbTerm::Domain(title)),
            Relationship::Aggregation
        );
    }

    #[test]
    fn classifies_same_table_siblings() {
        let (c, o, v) = setup();
        let title = c.attr_id("movie", "title").unwrap();
        let year = c.attr_id("movie", "director_id").unwrap();
        assert_eq!(
            classify(
                &c,
                &o,
                &v,
                DbTerm::Attribute(title),
                DbTerm::Attribute(year)
            ),
            Relationship::SameTable
        );
        assert_eq!(
            classify(&c, &o, &v, DbTerm::Domain(title), DbTerm::Attribute(year)),
            Relationship::SameTable
        );
    }

    #[test]
    fn classifies_inclusion_over_fk() {
        let (c, o, v) = setup();
        let title = c.attr_id("movie", "title").unwrap();
        let pname = c.attr_id("person", "name").unwrap();
        assert_eq!(
            classify(&c, &o, &v, DbTerm::Domain(title), DbTerm::Domain(pname)),
            Relationship::Inclusion
        );
    }

    #[test]
    fn classifies_generalization_by_synonymy() {
        let (c, o, v) = setup();
        let country = c.table_id("country").unwrap();
        let nation = c.table_id("nation").unwrap();
        assert_eq!(
            classify(&c, &o, &v, DbTerm::Table(country), DbTerm::Table(nation)),
            Relationship::Generalization
        );
    }

    #[test]
    fn unrelated_pairs() {
        let (c, o, v) = setup();
        let movie = c.table_id("movie").unwrap();
        let country = c.table_id("country").unwrap();
        assert_eq!(
            classify(&c, &o, &v, DbTerm::Table(movie), DbTerm::Table(country)),
            Relationship::Unrelated
        );
    }

    #[test]
    fn identity_and_weights() {
        let (c, o, v) = setup();
        let movie = c.table_id("movie").unwrap();
        assert_eq!(
            classify(&c, &o, &v, DbTerm::Table(movie), DbTerm::Table(movie)),
            Relationship::Identity
        );
        let r = SemanticRules::default();
        assert!(r.weight(Relationship::Aggregation) > r.weight(Relationship::SameTable));
        assert!(r.weight(Relationship::Inclusion) > r.weight(Relationship::Unrelated));
        assert!(r.weight(Relationship::Unrelated) > 0.0, "ergodicity floor");
    }

    #[test]
    fn weight_matrix_shape_and_positivity() {
        let (c, o, v) = setup();
        let (init, trans) = apriori_weights(&c, &o, &v, &SemanticRules::default());
        assert_eq!(init.len(), v.len());
        assert_eq!(trans.len(), v.len() * v.len());
        assert!(init.iter().all(|w| *w > 0.0));
        assert!(trans.iter().all(|w| *w > 0.0));
    }

    #[test]
    fn fk_connectivity_is_symmetric() {
        let (c, _, _) = setup();
        let movie = c.table_id("movie").unwrap();
        let person = c.table_id("person").unwrap();
        let country = c.table_id("country").unwrap();
        assert!(tables_fk_connected(&c, movie, person));
        assert!(tables_fk_connected(&c, person, movie));
        assert!(!tables_fk_connected(&c, movie, country));
    }
}
