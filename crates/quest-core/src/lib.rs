//! # quest-core — the QUEST keyword search engine
//!
//! A from-scratch reproduction of *QUEST: A Keyword Search System for
//! Relational Data based on Semantic and Machine Learning Techniques*
//! (Bergamaschi et al., PVLDB 6(12), 2013). QUEST translates keyword
//! queries into ranked SQL queries through three steps:
//!
//! 1. **forward** ([`forward::ForwardModule`]) — map keywords to database
//!    terms with a Hidden Markov Model (top-k list Viterbi), in an
//!    *a-priori* mode driven by semantic heuristics ([`semantics`]) and a
//!    *feedback-based* mode trained on validated searches;
//! 2. **backward** ([`backward::BackwardModule`]) — join the mapped terms
//!    with top-k Steiner trees over the attribute-level schema graph,
//!    weighted by mutual information so join paths are likely non-empty;
//! 3. **combiner** ([`combiner`]) — merge all evidence with Dempster-Shafer
//!    theory into ranked, executable [`explain::Explanation`]s.
//!
//! Sources are reached through [`wrapper::SourceWrapper`]s: full access
//! (indexes + statistics) or Deep-Web (metadata, patterns and ontologies
//! only). Instance-level baselines from the BANKS/DISCOVER lineage live in
//! [`baseline`] for the paper's comparative demonstrations.
//!
//! ```
//! use quest_core::{FullAccessWrapper, Quest, QuestConfig, SourceWrapper};
//! use relstore::{Catalog, DataType, Database, Row};
//!
//! let mut catalog = Catalog::new();
//! catalog
//!     .define_table("movie")?
//!     .pk("id", DataType::Int)?
//!     .col("title", DataType::Text)?
//!     .finish();
//! let mut db = Database::new(catalog)?;
//! db.insert("movie", Row::new(vec![1.into(), "Casablanca".into()]))?;
//!
//! let engine = Quest::new(FullAccessWrapper::new(db), QuestConfig::default())?;
//! let outcome = engine.search("casablanca")?;
//! let sql = outcome.explanations[0].sql(engine.wrapper().catalog());
//! assert!(sql.contains("movie.title LIKE '%casablanca%'"), "{sql}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod backward;
pub mod baseline;
pub mod combiner;
pub mod engine;
pub mod error;
pub mod eval;
pub mod explain;
pub mod forward;
pub mod keyword;
pub mod matcher;
pub mod query_builder;
pub mod scratch;
pub mod semantics;
pub mod term;
pub mod wrapper;

pub use backward::{
    BackwardModule, Interpretation, SchemaGraph, SchemaGraphWeights, TemplateCacheStats,
};
pub use combiner::{combine_explanation_scores, combine_ranked};
pub use engine::{ForwardResult, Quest, QuestConfig, SearchOutcome, StageTimings};
pub use error::QuestError;
pub use explain::Explanation;
pub use forward::{Configuration, ForwardModule};
pub use keyword::{Keyword, KeywordQuery, MAX_KEYWORDS};
pub use scratch::SearchScratch;
pub use semantics::{Relationship, SemanticRules};
pub use term::{DbTerm, Vocabulary};
pub use wrapper::{
    annotations::AnnotationSet, ontology::MiniOntology, DeepWebWrapper, FullAccessWrapper,
    PreparedKeyword, SourceWrapper,
};
