//! Explanations: the ranked output of QUEST.
//!
//! "We refer to these combinations as explanations, since they provide the
//! results of a keyword query in terms of data and its semantic
//! interpretations" (paper §1). An [`Explanation`] bundles the configuration,
//! the interpretation, the generated SQL and the combined score; its
//! rendering reproduces the demo GUI's presentation (Figure 2): the SQL, the
//! keyword mapping, the join path, and an ASCII drawing of the schema
//! portion involved.

use relstore::sql::{render_sql, SelectStatement};
use relstore::Catalog;

use crate::backward::{Interpretation, SchemaEdgeKind, SchemaGraph};
use crate::forward::Configuration;
use crate::keyword::KeywordQuery;

/// One ranked answer: an executable SQL query plus its provenance.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The keyword → term mapping that produced it.
    pub configuration: Configuration,
    /// The join path connecting the mapped terms.
    pub interpretation: Interpretation,
    /// The generated statement.
    pub statement: SelectStatement,
    /// Combined (pignistic) score in [0, 1].
    pub score: f64,
}

impl Explanation {
    /// The SQL text of this explanation.
    pub fn sql(&self, catalog: &Catalog) -> String {
        render_sql(catalog, &self.statement)
    }

    /// Multi-line presentation: SQL, mapping, join path, schema portion.
    pub fn render(&self, catalog: &Catalog, schema: &SchemaGraph, query: &KeywordQuery) -> String {
        let mut out = String::new();
        out.push_str(&format!("score {:.4}\n", self.score));
        out.push_str(&format!("  SQL:      {}\n", self.sql(catalog)));
        out.push_str(&format!(
            "  mapping:  {}\n",
            self.configuration.describe(catalog, query)
        ));
        out.push_str(&format!(
            "  path:     {}\n",
            self.interpretation.describe(schema, catalog)
        ));
        out.push_str("  schema portion:\n");
        out.push_str(&self.render_schema_portion(catalog, schema));
        out
    }

    /// ASCII drawing of the database portion touched by the query: tables as
    /// boxes, FK edges as arrows (the Figure 2 "graphical representation of
    /// the portion of the database involved by the query").
    pub fn render_schema_portion(&self, catalog: &Catalog, schema: &SchemaGraph) -> String {
        let tables = self.interpretation.tables(schema, catalog);
        if tables.is_empty() {
            let tables = self.configuration.tables(catalog);
            return tables
                .iter()
                .map(|t| format!("    [{}]\n", catalog.table(*t).name))
                .collect();
        }
        let mut lines = String::new();
        for t in &tables {
            lines.push_str(&format!("    [{}]\n", catalog.table(*t).name));
        }
        for &(a, b) in self.interpretation.tree.edges() {
            if let Some(SchemaEdgeKind::ForeignKey(fk)) = schema.edge_kind(a, b) {
                let from = catalog.attribute(fk.from);
                let to = catalog.attribute(fk.to);
                lines.push_str(&format!(
                    "    [{}] --{}={}--> [{}]\n",
                    catalog.table(from.table).name,
                    from.name,
                    to.name,
                    catalog.table(to.table).name,
                ));
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::{BackwardModule, SchemaGraphWeights};
    use crate::query_builder::build_query;
    use crate::term::DbTerm;
    use crate::wrapper::{FullAccessWrapper, SourceWrapper};
    use relstore::{DataType, Database, Row};

    fn explanation() -> (FullAccessWrapper, BackwardModule, KeywordQuery, Explanation) {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        d.finalize();
        let w = FullAccessWrapper::new(d);
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let cat = w.catalog();
        let q = KeywordQuery::parse("wind fleming").unwrap();
        let cfg = Configuration::new(
            vec![
                DbTerm::Domain(cat.attr_id("movie", "title").unwrap()),
                DbTerm::Domain(cat.attr_id("person", "name").unwrap()),
            ],
            0.8,
        );
        let interp = b.interpretations(cat, &cfg, 1).unwrap().remove(0);
        let stmt = build_query(cat, b.schema_graph(), &q, &cfg, &interp, None).unwrap();
        let e = Explanation {
            configuration: cfg,
            interpretation: interp,
            statement: stmt,
            score: 0.42,
        };
        (w, b, q, e)
    }

    #[test]
    fn render_contains_all_sections() {
        let (w, b, q, e) = explanation();
        let text = e.render(w.catalog(), b.schema_graph(), &q);
        assert!(text.contains("score 0.4200"));
        assert!(text.contains("SELECT"));
        assert!(text.contains("wind -> movie.title::value"));
        assert!(text.contains("movie.director_id=person.id"));
        assert!(text.contains("[movie] --director_id=id--> [person]"));
    }

    #[test]
    fn sql_is_executable() {
        let (w, _, _, e) = explanation();
        let rs = w.execute(&e.statement).unwrap();
        assert_eq!(rs.len(), 1);
        assert!(e.sql(w.catalog()).starts_with("SELECT"));
    }
}
