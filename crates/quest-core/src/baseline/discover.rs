//! DISCOVER-style candidate network enumeration.
//!
//! The schema-based baseline (Hristidis & Papakonstantinou): keywords select
//! *non-free* tuple sets (tables with matches); candidate networks are
//! connected subtrees of the table-level schema graph covering all non-free
//! tables, up to a size bound. Every candidate network compiles to a join
//! expression whose evaluation returns the answers. Unlike QUEST, the
//! enumeration is exhaustive and unweighted — the comparison point for
//! demo message 3 alongside BANKS.

use std::collections::HashSet;

use relstore::sql::{JoinCondition, Predicate, Projection, SelectStatement};
use relstore::{AttrId, Catalog, Database, TableId};

use crate::keyword::KeywordQuery;

/// A candidate network: a connected set of tables covering all keyword
/// tables, with the FK joins connecting them.
#[derive(Debug, Clone)]
pub struct CandidateNetwork {
    /// Tables in the network.
    pub tables: Vec<TableId>,
    /// FK join conditions connecting them (a spanning tree).
    pub joins: Vec<JoinCondition>,
}

impl CandidateNetwork {
    /// Number of joined tables.
    pub fn size(&self) -> usize {
        self.tables.len()
    }

    /// Compile to SQL with the given keyword predicates.
    pub fn to_statement(
        &self,
        predicates: Vec<Predicate>,
        limit: Option<usize>,
    ) -> SelectStatement {
        SelectStatement {
            projection: Projection::Star,
            from: self.tables.clone(),
            joins: self.joins.clone(),
            predicates,
            distinct: true,
            limit,
        }
    }
}

/// Per-keyword matched attributes (the non-free tuple sets): attributes
/// whose index matches the keyword.
pub fn keyword_attrs(db: &Database, query: &KeywordQuery) -> Vec<Vec<AttrId>> {
    query
        .keywords
        .iter()
        .map(|kw| {
            db.catalog()
                .attributes()
                .iter()
                .filter(|a| a.full_text && db.search_score(a.id, &kw.normalized) > 0.0)
                .map(|a| a.id)
                .collect()
        })
        .collect()
}

/// Enumerate candidate networks covering `required` tables, with at most
/// `max_size` tables total. Returns all minimal connected covers (each
/// network is a tree over the table graph).
pub fn enumerate_networks(
    catalog: &Catalog,
    required: &[TableId],
    max_size: usize,
) -> Vec<CandidateNetwork> {
    let mut required: Vec<TableId> = required.to_vec();
    required.sort();
    required.dedup();
    if required.is_empty() {
        return Vec::new();
    }
    if required.len() == 1 {
        return vec![CandidateNetwork {
            tables: required,
            joins: Vec::new(),
        }];
    }

    // Table-level adjacency from FKs.
    let mut adj: Vec<(TableId, TableId, JoinCondition)> = Vec::new();
    for fk in catalog.foreign_keys() {
        let a = catalog.attribute(fk.from).table;
        let b = catalog.attribute(fk.to).table;
        if a != b {
            adj.push((
                a,
                b,
                JoinCondition {
                    left: fk.from,
                    right: fk.to,
                },
            ));
        }
    }

    // DFS over partial trees: grow from the first required table.
    let mut results: Vec<CandidateNetwork> = Vec::new();
    let mut seen_keys: HashSet<Vec<TableId>> = HashSet::new();
    let start = required[0];
    let mut stack: Vec<(Vec<TableId>, Vec<JoinCondition>)> = vec![(vec![start], Vec::new())];
    while let Some((tables, joins)) = stack.pop() {
        if required.iter().all(|t| tables.contains(t)) {
            let mut key = tables.clone();
            key.sort();
            if seen_keys.insert(key.clone()) {
                results.push(CandidateNetwork { tables, joins });
            }
            continue;
        }
        if tables.len() >= max_size {
            continue;
        }
        for (a, b, jc) in &adj {
            let (inside, outside) = if tables.contains(a) && !tables.contains(b) {
                (*a, *b)
            } else if tables.contains(b) && !tables.contains(a) {
                (*b, *a)
            } else {
                continue;
            };
            let _ = inside;
            let mut nt = tables.clone();
            nt.push(outside);
            let mut nj = joins.clone();
            nj.push(*jc);
            stack.push((nt, nj));
        }
    }
    results.sort_by_key(|cn| cn.size());
    results
}

/// Full DISCOVER-style pipeline: find per-keyword attributes, enumerate
/// networks over the matched tables, compile each to SQL.
pub fn discover_statements(
    db: &Database,
    query: &KeywordQuery,
    max_size: usize,
    limit: Option<usize>,
) -> Vec<SelectStatement> {
    let attr_sets = keyword_attrs(db, query);
    if attr_sets.iter().any(|s| s.is_empty()) {
        return Vec::new();
    }
    // One attribute choice per keyword: take the cross product, capped.
    const MAX_COMBOS: usize = 64;
    let mut combos: Vec<Vec<AttrId>> = vec![Vec::new()];
    for set in &attr_sets {
        let mut next = Vec::new();
        for combo in &combos {
            for a in set {
                let mut c = combo.clone();
                c.push(*a);
                next.push(c);
                if next.len() >= MAX_COMBOS {
                    break;
                }
            }
            if next.len() >= MAX_COMBOS {
                break;
            }
        }
        combos = next;
    }

    let mut out = Vec::new();
    for combo in combos {
        let tables: Vec<TableId> = combo
            .iter()
            .map(|a| db.catalog().attribute(*a).table)
            .collect();
        for cn in enumerate_networks(db.catalog(), &tables, max_size) {
            let predicates: Vec<Predicate> = combo
                .iter()
                .zip(query.keywords.iter())
                .map(|(a, kw)| Predicate::Contains {
                    attr: *a,
                    keyword: kw.normalized.clone(),
                })
                .collect();
            out.push(cn.to_statement(predicates, limit));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, Row};

    fn db() -> Database {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.define_table("casting")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("movie_id", DataType::Int, true, false)
            .unwrap()
            .col_opts("person_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        c.add_foreign_key("casting", "movie_id", "movie").unwrap();
        c.add_foreign_key("casting", "person_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert("person", Row::new(vec![2.into(), "Vivien Leigh".into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        d.insert("casting", Row::new(vec![100.into(), 10.into(), 2.into()]))
            .unwrap();
        d.finalize();
        d
    }

    #[test]
    fn single_table_network_is_trivial() {
        let d = db();
        let movie = d.catalog().table_id("movie").unwrap();
        let nets = enumerate_networks(d.catalog(), &[movie], 3);
        assert_eq!(nets.len(), 1);
        assert!(nets[0].joins.is_empty());
    }

    #[test]
    fn two_table_networks_include_both_paths() {
        let d = db();
        let movie = d.catalog().table_id("movie").unwrap();
        let person = d.catalog().table_id("person").unwrap();
        let nets = enumerate_networks(d.catalog(), &[movie, person], 3);
        // Direct FK (movie-person) and via casting (movie-casting-person).
        assert!(nets.len() >= 2, "got {} networks", nets.len());
        assert_eq!(nets[0].size(), 2);
        assert!(nets.iter().any(|n| n.size() == 3));
        // Networks are returned smallest first.
        for w in nets.windows(2) {
            assert!(w[0].size() <= w[1].size());
        }
    }

    #[test]
    fn size_bound_prunes() {
        let d = db();
        let movie = d.catalog().table_id("movie").unwrap();
        let person = d.catalog().table_id("person").unwrap();
        let nets = enumerate_networks(d.catalog(), &[movie, person], 2);
        assert!(nets.iter().all(|n| n.size() <= 2));
    }

    #[test]
    fn discover_pipeline_produces_executable_sql() {
        let d = db();
        let q = KeywordQuery::parse("wind leigh").unwrap();
        let stmts = discover_statements(&d, &q, 3, Some(10));
        assert!(!stmts.is_empty());
        // At least one statement returns the Wind/Leigh pair via casting.
        let hits = stmts
            .iter()
            .filter(|s| {
                relstore::sql::execute(&d, s)
                    .map(|r| !r.is_empty())
                    .unwrap_or(false)
            })
            .count();
        assert!(hits >= 1);
    }

    #[test]
    fn unknown_keyword_short_circuits() {
        let d = db();
        let q = KeywordQuery::parse("wind zzzz").unwrap();
        assert!(discover_statements(&d, &q, 3, None).is_empty());
    }

    #[test]
    fn empty_required_set() {
        let d = db();
        assert!(enumerate_networks(d.catalog(), &[], 3).is_empty());
    }
}
