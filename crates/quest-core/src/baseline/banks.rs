//! BANKS-style backward expanding search over the instance graph.
//!
//! The classic graph-based baseline (Bhalotia et al.): keywords select sets
//! of matching tuples; a backward Dijkstra expands from every keyword group
//! simultaneously; a node reached from *all* groups roots an answer tree
//! whose cost is the sum of the path lengths. QUEST's demo message 3
//! compares its schema-level Steiner trees against this instance-level
//! search, where the graph has one node per tuple.

use std::collections::HashMap;

use quest_graph::{dijkstra, NodeId};
use relstore::{Database, TupleRef};

use crate::baseline::instance_graph::InstanceGraph;
use crate::error::QuestError;
use crate::keyword::KeywordQuery;

/// An answer: a rooted tuple tree.
#[derive(Debug, Clone)]
pub struct TupleTree {
    /// The root (the "information node" joining all keywords).
    pub root: TupleRef,
    /// All tuples in the tree (root, keyword tuples, connectors).
    pub tuples: Vec<TupleRef>,
    /// Total edge cost (sum of root→keyword path lengths).
    pub cost: f64,
}

/// Per-keyword matching tuples, discovered through the full-text indexes.
pub fn keyword_tuple_groups(
    db: &Database,
    query: &KeywordQuery,
    per_keyword_limit: usize,
) -> Vec<Vec<TupleRef>> {
    let catalog = db.catalog();
    query
        .keywords
        .iter()
        .map(|kw| {
            let mut group = Vec::new();
            for attr in catalog.attributes() {
                if !attr.full_text {
                    continue;
                }
                for (rid, _score) in db.search_rows(attr.id, &kw.normalized, per_keyword_limit) {
                    let t = TupleRef {
                        table: attr.table,
                        row: rid,
                    };
                    if !group.contains(&t) {
                        group.push(t);
                    }
                }
            }
            group
        })
        .collect()
}

/// Run the backward expanding search: top-`k` tuple trees, cheapest first.
///
/// Returns an empty list when any keyword matches no tuple (conjunctive
/// semantics, as in BANKS).
pub fn banks_search(
    db: &Database,
    graph: &InstanceGraph,
    query: &KeywordQuery,
    k: usize,
) -> Result<Vec<TupleTree>, QuestError> {
    let groups = keyword_tuple_groups(db, query, 50);
    if groups.iter().any(|g| g.is_empty()) {
        return Ok(Vec::new());
    }

    // Multi-source shortest paths per keyword group. A virtual source is
    // emulated by running Dijkstra from each member and taking the minimum
    // (group sizes are capped by `per_keyword_limit`).
    let mut group_dists: Vec<HashMap<NodeId, (f64, NodeId)>> = Vec::with_capacity(groups.len());
    for group in &groups {
        let mut best: HashMap<NodeId, (f64, NodeId)> = HashMap::new();
        for t in group {
            let Some(src) = graph.node_of(*t) else {
                continue;
            };
            let sp = dijkstra(graph.graph(), src);
            for n in 0..graph.node_count() {
                let d = sp.dist[n];
                if d.is_finite() {
                    let id = NodeId(n as u32);
                    let e = best.entry(id).or_insert((f64::INFINITY, src));
                    if d < e.0 {
                        *e = (d, src);
                    }
                }
            }
        }
        group_dists.push(best);
    }

    // Roots reachable from all groups, scored by summed distance.
    let mut roots: Vec<(NodeId, f64)> = Vec::new();
    'nodes: for n in 0..graph.node_count() {
        let id = NodeId(n as u32);
        let mut cost = 0.0;
        for gd in &group_dists {
            match gd.get(&id) {
                Some((d, _)) => cost += d,
                None => continue 'nodes,
            }
        }
        roots.push((id, cost));
    }
    roots.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    roots.truncate(k);

    // Materialize trees: union of root→group-source shortest paths.
    let mut out = Vec::with_capacity(roots.len());
    for (root, cost) in roots {
        let sp = dijkstra(graph.graph(), root);
        let mut tuples = vec![graph.tuple_of(root)];
        for gd in &group_dists {
            let (_, src) = gd[&root];
            if let Some(path) = sp.path_edges(graph.graph(), src) {
                for ei in path {
                    let e = graph.graph().edge(ei);
                    for node in [e.a, e.b] {
                        let t = graph.tuple_of(node);
                        if !tuples.contains(&t) {
                            tuples.push(t);
                        }
                    }
                }
            }
        }
        out.push(TupleTree {
            root: graph.tuple_of(root),
            tuples,
            cost,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{Catalog, DataType, Row};

    fn db() -> Database {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert("person", Row::new(vec![2.into(), "Michael Curtiz".into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        d.insert(
            "movie",
            Row::new(vec![11.into(), "Casablanca".into(), 2.into()]),
        )
        .unwrap();
        d.finalize();
        d
    }

    #[test]
    fn keyword_groups_find_matching_tuples() {
        let d = db();
        let q = KeywordQuery::parse("wind fleming").unwrap();
        let groups = keyword_tuple_groups(&d, &q, 10);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 1); // the movie
        assert_eq!(groups[1].len(), 1); // the person
    }

    #[test]
    fn connects_keywords_through_fk_edge() {
        let d = db();
        let g = InstanceGraph::build(&d);
        let q = KeywordQuery::parse("wind fleming").unwrap();
        let trees = banks_search(&d, &g, &q, 3).unwrap();
        assert!(!trees.is_empty());
        let best = &trees[0];
        // The answer tree contains both the movie and its director.
        assert_eq!(best.tuples.len(), 2);
        assert!((best.cost - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_keyword_answer_is_single_tuple() {
        let d = db();
        let g = InstanceGraph::build(&d);
        let q = KeywordQuery::parse("casablanca").unwrap();
        let trees = banks_search(&d, &g, &q, 3).unwrap();
        assert!(!trees.is_empty());
        assert_eq!(trees[0].cost, 0.0);
        assert_eq!(trees[0].tuples.len(), 1);
    }

    #[test]
    fn missing_keyword_yields_nothing() {
        let d = db();
        let g = InstanceGraph::build(&d);
        let q = KeywordQuery::parse("wind zzzunknown").unwrap();
        assert!(banks_search(&d, &g, &q, 3).unwrap().is_empty());
    }

    #[test]
    fn unjoinable_keywords_yield_nothing() {
        // Wind (Fleming's movie) and Curtiz: connected only through... they
        // are in separate components? Actually movie->person edges only;
        // Wind-Curtiz has no connecting path.
        let d = db();
        let g = InstanceGraph::build(&d);
        let q = KeywordQuery::parse("wind curtiz").unwrap();
        let trees = banks_search(&d, &g, &q, 3).unwrap();
        assert!(trees.is_empty());
    }
}
