//! Instance-level baselines from the BANKS/DISCOVER lineage.
//!
//! QUEST's demonstration (message 3) argues that Steiner trees over *schema*
//! graphs are effective and scalable compared to the classic approaches that
//! operate on the instance. These baselines make the comparison concrete:
//!
//! * [`InstanceGraph`] + [`banks_search`] — graph-based: one node per tuple,
//!   backward expanding search (BANKS);
//! * [`discover_statements`] — schema-based but exhaustive and unweighted:
//!   candidate network enumeration (DISCOVER).

pub mod banks;
pub mod discover;
pub mod instance_graph;

pub use banks::{banks_search, keyword_tuple_groups, TupleTree};
pub use discover::{discover_statements, enumerate_networks, keyword_attrs, CandidateNetwork};
pub use instance_graph::InstanceGraph;
