//! The instance-level data graph used by classic graph-based keyword search.
//!
//! "Graph-based techniques treat relational databases as graphs, where nodes
//! are tuples and edges relationships between those tuples ... the main
//! issues are related to the large size of the graphs induced by the
//! database instance" (paper §1). QUEST's demonstration message 3 contrasts
//! its schema-level Steiner trees with exactly this representation, so we
//! build it faithfully: one node per tuple, one edge per matching
//! foreign-key pair.

use std::collections::HashMap;

use quest_graph::{Graph, NodeId};
use relstore::{Database, TupleRef};

/// The tuple-level graph of a database instance.
#[derive(Debug, Clone)]
pub struct InstanceGraph {
    graph: Graph,
    tuples: Vec<TupleRef>,
    node_of: HashMap<TupleRef, NodeId>,
}

impl InstanceGraph {
    /// Build the graph from a database: nodes are tuples, edges connect a
    /// referencing row to its referenced row for every foreign key.
    pub fn build(db: &Database) -> InstanceGraph {
        let catalog = db.catalog();
        let mut tuples = Vec::with_capacity(db.total_rows());
        let mut node_of = HashMap::with_capacity(db.total_rows());
        for table in catalog.tables() {
            for (rid, _) in db.table_data(table.id).iter() {
                let t = TupleRef {
                    table: table.id,
                    row: rid,
                };
                node_of.insert(t, NodeId(tuples.len() as u32));
                tuples.push(t);
            }
        }
        let mut graph = Graph::with_nodes(tuples.len());
        for fk in catalog.foreign_keys() {
            let from_attr = catalog.attribute(fk.from);
            let to_table = catalog.attribute(fk.to).table;
            let referenced = db.table_data(to_table);
            for (rid, row) in db.table_data(from_attr.table).iter() {
                let v = row.get(from_attr.position);
                if v.is_null() {
                    continue;
                }
                if let Some(target) = referenced.lookup_pk(std::slice::from_ref(v)) {
                    let a = node_of[&TupleRef {
                        table: from_attr.table,
                        row: rid,
                    }];
                    let b = node_of[&TupleRef {
                        table: to_table,
                        row: target,
                    }];
                    if a != b {
                        let _ = graph.add_edge(a, b, 1.0);
                    }
                }
            }
        }
        InstanceGraph {
            graph,
            tuples,
            node_of,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Node of a tuple.
    pub fn node_of(&self, t: TupleRef) -> Option<NodeId> {
        self.node_of.get(&t).copied()
    }

    /// Tuple of a node.
    pub fn tuple_of(&self, n: NodeId) -> TupleRef {
        self.tuples[n.0 as usize]
    }

    /// Number of tuple nodes.
    pub fn node_count(&self) -> usize {
        self.tuples.len()
    }

    /// Number of FK edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{Catalog, DataType, Row};

    fn db() -> Database {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Fleming".into()]))
            .unwrap();
        d.insert("person", Row::new(vec![2.into(), "Curtiz".into()]))
            .unwrap();
        d.insert("movie", Row::new(vec![10.into(), "Wind".into(), 1.into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![11.into(), "Casablanca".into(), 2.into()]),
        )
        .unwrap();
        d.insert("movie", Row::new(vec![12.into(), "Oz".into(), 1.into()]))
            .unwrap();
        d.finalize();
        d
    }

    #[test]
    fn one_node_per_tuple_one_edge_per_fk_pair() {
        let d = db();
        let g = InstanceGraph::build(&d);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 3); // three movies, each with a director
    }

    #[test]
    fn grows_with_instance_not_schema() {
        let mut d = db();
        for i in 0..100i64 {
            d.insert(
                "movie",
                Row::new(vec![(100 + i).into(), format!("Film {i}").into(), 1.into()]),
            )
            .unwrap();
        }
        d.finalize();
        let g = InstanceGraph::build(&d);
        assert_eq!(g.node_count(), 105);
        assert_eq!(g.edge_count(), 103);
    }

    #[test]
    fn null_fks_produce_no_edges() {
        let mut d = db();
        d.insert(
            "movie",
            Row::new(vec![99.into(), "Orphan".into(), relstore::Value::Null]),
        )
        .unwrap();
        d.finalize();
        let g = InstanceGraph::build(&d);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn tuple_node_round_trip() {
        let d = db();
        let g = InstanceGraph::build(&d);
        let movie = d.catalog().table_id("movie").unwrap();
        let t = TupleRef {
            table: movie,
            row: relstore::RowId(0),
        };
        let n = g.node_of(t).unwrap();
        assert_eq!(g.tuple_of(n), t);
    }
}
