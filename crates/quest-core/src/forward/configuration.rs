//! Configurations: keyword → database-term mappings.
//!
//! "The first step is to determine how the keywords in the query can
//! correspond to the structural elements of the database. This type of
//! correspondences are referred to as configurations. Of course, each
//! correspondence comes with some degree of uncertainty that is typically
//! expressed with a weight" (paper §1).

use relstore::Catalog;

use crate::keyword::KeywordQuery;
use crate::term::DbTerm;

/// One mapping of every query keyword to a database term, with a confidence
/// score (the forward HMM's path probability).
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    /// One term per keyword, in keyword order.
    pub terms: Vec<DbTerm>,
    /// Non-negative confidence; comparable only within one ranked list.
    pub score: f64,
}

impl Configuration {
    /// Build from aligned terms and a score.
    pub fn new(terms: Vec<DbTerm>, score: f64) -> Configuration {
        Configuration { terms, score }
    }

    /// Identity key: two configurations with the same term sequence are the
    /// same hypothesis regardless of score.
    pub fn key(&self) -> &[DbTerm] {
        &self.terms
    }

    /// Human-readable rendering aligned with the query keywords.
    pub fn describe(&self, catalog: &Catalog, query: &KeywordQuery) -> String {
        self.terms
            .iter()
            .zip(query.keywords.iter())
            .map(|(t, k)| format!("{} -> {}", k.raw, t.describe(catalog)))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The distinct tables touched by this configuration.
    pub fn tables(&self, catalog: &Catalog) -> Vec<relstore::TableId> {
        let mut ts: Vec<_> = self.terms.iter().map(|t| t.table(catalog)).collect();
        ts.sort();
        ts.dedup();
        ts
    }
}

/// Deduplicate a ranked list of configurations by term sequence, keeping the
/// best score for each, preserving descending score order.
pub fn dedup_configurations(mut configs: Vec<Configuration>) -> Vec<Configuration> {
    configs.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out: Vec<Configuration> = Vec::with_capacity(configs.len());
    for c in configs {
        if !out.iter().any(|o| o.key() == c.key()) {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, TableId};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .finish();
        c
    }

    #[test]
    fn describe_aligns_keywords_and_terms() {
        let c = catalog();
        let q = KeywordQuery::parse("casablanca movie").unwrap();
        let title = c.attr_id("movie", "title").unwrap();
        let cfg = Configuration::new(vec![DbTerm::Domain(title), DbTerm::Table(TableId(0))], 0.5);
        let d = cfg.describe(&c, &q);
        assert!(d.contains("casablanca -> movie.title::value"));
        assert!(d.contains("movie -> movie"));
        assert_eq!(cfg.tables(&c), vec![TableId(0)]);
    }

    #[test]
    fn dedup_keeps_best_scores_in_order() {
        let title = relstore::AttrId(1);
        let a = Configuration::new(vec![DbTerm::Domain(title)], 0.9);
        let b = Configuration::new(vec![DbTerm::Attribute(title)], 0.7);
        let a_dup = Configuration::new(vec![DbTerm::Domain(title)], 0.3);
        let out = dedup_configurations(vec![a_dup, b.clone(), a.clone()]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], a);
        assert_eq!(out[1], b);
    }
}
