//! Emission likelihoods: how well a keyword fits each HMM state.
//!
//! "The emission probability distribution describes the likelihood for a
//! keyword to be 'generated' by a specific state" (paper §3). For *domain*
//! states the likelihood is the wrapper's search function (full-text score,
//! or the annotation/ontology surrogate on hidden sources); for *table* and
//! *attribute* states it is name similarity between the keyword and the
//! element's identifier (optionally extended with annotation aliases).

use quest_hmm::Emissions;

use crate::keyword::{Keyword, KeywordQuery};
use crate::matcher::name_similarity;
use crate::term::{normalize_identifier, DbTerm, Vocabulary};
use crate::wrapper::SourceWrapper;

/// Uniform floor applied when a keyword matches no state at all, keeping the
/// observation sequence decodable (the keyword then contributes no
/// discrimination but does not veto the query).
pub const EMISSION_FLOOR: f64 = 1e-6;

/// Compute the dense emission matrix for a query over the vocabulary states.
pub fn emissions_for_query<W: SourceWrapper + ?Sized>(
    wrapper: &W,
    vocab: &Vocabulary,
    query: &KeywordQuery,
) -> Emissions {
    query
        .keywords
        .iter()
        .map(|kw| emission_row(wrapper, vocab, kw))
        .collect()
}

/// Emission likelihoods of one keyword across all states.
pub fn emission_row<W: SourceWrapper + ?Sized>(
    wrapper: &W,
    vocab: &Vocabulary,
    keyword: &Keyword,
) -> Vec<f64> {
    let catalog = wrapper.catalog();
    let ontology = wrapper.ontology();
    let mut row: Vec<f64> = Vec::with_capacity(vocab.len());
    for s in 0..vocab.len() {
        let score = match vocab.term(s) {
            DbTerm::Domain(a) => wrapper.value_score(a, keyword),
            DbTerm::Table(_) | DbTerm::Attribute(_) => {
                let mut best = name_similarity(&keyword.normalized, vocab.name(s), ontology);
                if let (DbTerm::Attribute(a), Some(anns)) = (vocab.term(s), wrapper.annotations()) {
                    if let Some(ann) = anns.get(a) {
                        for alias in &ann.aliases {
                            let alias_norm = normalize_identifier(alias);
                            best = best.max(
                                name_similarity(&keyword.normalized, &alias_norm, ontology) * 0.95,
                            );
                        }
                    }
                }
                let _ = catalog;
                best
            }
        };
        row.push(score.clamp(0.0, 1.0));
    }
    if row.iter().all(|&v| v <= 0.0) {
        row.iter_mut().for_each(|v| *v = EMISSION_FLOOR);
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::FullAccessWrapper;
    use relstore::{Catalog, DataType, Database, Row};

    fn wrapper() -> (FullAccessWrapper, Vocabulary) {
        let mut c = Catalog::new();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .finish();
        let mut d = Database::new(c).unwrap();
        d.insert("movie", Row::new(vec![1.into(), "Casablanca".into()]))
            .unwrap();
        d.finalize();
        let v = Vocabulary::from_catalog(d.catalog());
        (FullAccessWrapper::new(d), v)
    }

    #[test]
    fn value_keyword_hits_domain_state() {
        let (w, v) = wrapper();
        let q = KeywordQuery::parse("casablanca").unwrap();
        let e = emissions_for_query(&w, &v, &q);
        assert_eq!(e.len(), 1);
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let dom = v.state(DbTerm::Domain(title)).unwrap();
        let tab = v
            .state(DbTerm::Table(w.catalog().table_id("movie").unwrap()))
            .unwrap();
        assert!(e[0][dom] > 0.0);
        assert_eq!(e[0][tab], 0.0); // "casablanca" is not similar to "movie"
    }

    #[test]
    fn schema_keyword_hits_metadata_states() {
        let (w, v) = wrapper();
        let q = KeywordQuery::parse("film title").unwrap();
        let e = emissions_for_query(&w, &v, &q);
        let tab = v
            .state(DbTerm::Table(w.catalog().table_id("movie").unwrap()))
            .unwrap();
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let attr = v.state(DbTerm::Attribute(title)).unwrap();
        assert!(e[0][tab] > 0.8, "film ~ movie via ontology");
        assert!(e[1][attr] > 0.9, "title == title");
    }

    #[test]
    fn unknown_keyword_gets_floor() {
        let (w, v) = wrapper();
        let q = KeywordQuery::parse("qqqqzzzz").unwrap();
        let e = emissions_for_query(&w, &v, &q);
        assert!(e[0].iter().all(|&x| x == EMISSION_FLOOR));
    }

    #[test]
    fn rows_are_bounded() {
        let (w, v) = wrapper();
        let q = KeywordQuery::parse("casablanca film title").unwrap();
        for row in emissions_for_query(&w, &v, &q) {
            assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }
}
