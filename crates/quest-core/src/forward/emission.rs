//! Emission likelihoods: how well a keyword fits each HMM state.
//!
//! "The emission probability distribution describes the likelihood for a
//! keyword to be 'generated' by a specific state" (paper §3). For *domain*
//! states the likelihood is the wrapper's search function (full-text score,
//! or the annotation/ontology surrogate on hidden sources); for *table* and
//! *attribute* states it is name similarity between the keyword and the
//! element's identifier (optionally extended with annotation aliases).

use quest_hmm::Emissions;

use crate::keyword::{Keyword, KeywordQuery};
use crate::matcher::name_similarity;
use crate::term::{normalize_identifier, DbTerm, Vocabulary};
use crate::wrapper::SourceWrapper;

/// Uniform floor applied when a keyword matches no state at all, keeping the
/// observation sequence decodable (the keyword then contributes no
/// discrimination but does not veto the query).
pub const EMISSION_FLOOR: f64 = 1e-6;

/// How one keyword's domain-state emissions are scored: the two paths are
/// bit-identical on the same wrapper (pinned by tests) but the reference
/// one deliberately keeps the pre-optimization cost profile. (The hot path
/// lives in `ForwardModule::emissions_into`, which shares this module's
/// scoring helpers.)
enum ValueScorer {
    /// Plain `value_score`: normalization per `(keyword, attribute)` probe.
    Plain,
    /// The wrapper's retained pre-optimization path (benchmark baseline).
    Reference,
}

/// Compute the dense emission matrix for a query over the vocabulary states.
pub fn emissions_for_query<W: SourceWrapper + ?Sized>(
    wrapper: &W,
    vocab: &Vocabulary,
    query: &KeywordQuery,
) -> Emissions {
    query
        .keywords
        .iter()
        .map(|kw| emission_row(wrapper, vocab, kw))
        .collect()
}

/// [`emissions_for_query`] through the wrapper's *reference* value-scoring
/// path — the pre-optimization baseline kept for the bit-identity suite and
/// the committed pipeline benchmark.
pub fn emissions_for_query_reference<W: SourceWrapper + ?Sized>(
    wrapper: &W,
    vocab: &Vocabulary,
    query: &KeywordQuery,
) -> Emissions {
    query
        .keywords
        .iter()
        .map(|kw| {
            let mut row = Vec::new();
            fill_emission_row(wrapper, vocab, kw, ValueScorer::Reference, &mut row);
            row
        })
        .collect()
}

/// Emission likelihoods of one keyword across all states.
pub fn emission_row<W: SourceWrapper + ?Sized>(
    wrapper: &W,
    vocab: &Vocabulary,
    keyword: &Keyword,
) -> Vec<f64> {
    let mut row = Vec::new();
    fill_emission_row(wrapper, vocab, keyword, ValueScorer::Plain, &mut row);
    row
}

/// The one emission-row implementation all public entry points share, so
/// the prepared, plain, and reference paths cannot drift: only the
/// domain-state value probe differs.
fn fill_emission_row<W: SourceWrapper + ?Sized>(
    wrapper: &W,
    vocab: &Vocabulary,
    keyword: &Keyword,
    scorer: ValueScorer,
    row: &mut Vec<f64>,
) {
    let ontology = wrapper.ontology();
    row.clear();
    row.reserve(vocab.len());
    for s in 0..vocab.len() {
        let score = match vocab.term(s) {
            DbTerm::Domain(a) => match scorer {
                ValueScorer::Plain => wrapper.value_score(a, keyword),
                ValueScorer::Reference => wrapper.value_score_reference(a, keyword),
            }
            .clamp(0.0, 1.0),
            DbTerm::Table(_) | DbTerm::Attribute(_) => {
                // Normalize any annotation aliases on the fly; the hot path
                // precomputes them once at setup and calls the same scorer.
                let aliases: Vec<String> = match (vocab.term(s), wrapper.annotations()) {
                    (DbTerm::Attribute(a), Some(anns)) => anns
                        .get(a)
                        .map(|ann| {
                            ann.aliases
                                .iter()
                                .map(|al| normalize_identifier(al))
                                .collect()
                        })
                        .unwrap_or_default(),
                    _ => Vec::new(),
                };
                metadata_state_score(&keyword.normalized, vocab.name(s), &aliases, ontology)
            }
        };
        row.push(score);
    }
    apply_emission_floor(row);
}

/// Emission score of one keyword against one *metadata* (table/attribute)
/// state: name similarity, lifted by annotation-alias matches at a 0.95
/// discount, clamped to [0, 1]. The single implementation shared by the
/// live paths here and the memoized hot path in `ForwardModule`, so the
/// scoring rule cannot drift between them.
pub(crate) fn metadata_state_score(
    keyword: &str,
    name: &str,
    normalized_aliases: &[String],
    ontology: &crate::wrapper::ontology::MiniOntology,
) -> f64 {
    let mut best = name_similarity(keyword, name, ontology);
    for alias in normalized_aliases {
        best = best.max(name_similarity(keyword, alias, ontology) * 0.95);
    }
    best.clamp(0.0, 1.0)
}

/// Replace an all-zero emission row with the uniform [`EMISSION_FLOOR`].
/// Shared by every row builder (see `ForwardModule::emissions_into`).
pub(crate) fn apply_emission_floor(row: &mut [f64]) {
    if row.iter().all(|&v| v <= 0.0) {
        row.iter_mut().for_each(|v| *v = EMISSION_FLOOR);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::FullAccessWrapper;
    use relstore::{Catalog, DataType, Database, Row};

    fn wrapper() -> (FullAccessWrapper, Vocabulary) {
        let mut c = Catalog::new();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .finish();
        let mut d = Database::new(c).unwrap();
        d.insert("movie", Row::new(vec![1.into(), "Casablanca".into()]))
            .unwrap();
        d.finalize();
        let v = Vocabulary::from_catalog(d.catalog());
        (FullAccessWrapper::new(d), v)
    }

    #[test]
    fn value_keyword_hits_domain_state() {
        let (w, v) = wrapper();
        let q = KeywordQuery::parse("casablanca").unwrap();
        let e = emissions_for_query(&w, &v, &q);
        assert_eq!(e.len(), 1);
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let dom = v.state(DbTerm::Domain(title)).unwrap();
        let tab = v
            .state(DbTerm::Table(w.catalog().table_id("movie").unwrap()))
            .unwrap();
        assert!(e[0][dom] > 0.0);
        assert_eq!(e[0][tab], 0.0); // "casablanca" is not similar to "movie"
    }

    #[test]
    fn schema_keyword_hits_metadata_states() {
        let (w, v) = wrapper();
        let q = KeywordQuery::parse("film title").unwrap();
        let e = emissions_for_query(&w, &v, &q);
        let tab = v
            .state(DbTerm::Table(w.catalog().table_id("movie").unwrap()))
            .unwrap();
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let attr = v.state(DbTerm::Attribute(title)).unwrap();
        assert!(e[0][tab] > 0.8, "film ~ movie via ontology");
        assert!(e[1][attr] > 0.9, "title == title");
    }

    #[test]
    fn unknown_keyword_gets_floor() {
        let (w, v) = wrapper();
        let q = KeywordQuery::parse("qqqqzzzz").unwrap();
        let e = emissions_for_query(&w, &v, &q);
        assert!(e[0].iter().all(|&x| x == EMISSION_FLOOR));
    }

    #[test]
    fn reference_rows_match_plain_bitwise() {
        let (w, v) = wrapper();
        let q = KeywordQuery::parse("casablanca film title qqqzzz").unwrap();
        let plain = emissions_for_query(&w, &v, &q);
        let reference = emissions_for_query_reference(&w, &v, &q);
        assert_eq!(plain.len(), reference.len());
        for t in 0..plain.len() {
            for s in 0..plain[t].len() {
                assert_eq!(
                    plain[t][s].to_bits(),
                    reference[t][s].to_bits(),
                    "t={t} s={s}"
                );
            }
        }
    }

    #[test]
    fn rows_are_bounded() {
        let (w, v) = wrapper();
        let q = KeywordQuery::parse("casablanca film title").unwrap();
        for row in emissions_for_query(&w, &v, &q) {
            assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }
}
