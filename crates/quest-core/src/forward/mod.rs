//! The forward module: keyword query → top-k configurations.
//!
//! Runs the list Viterbi algorithm over an HMM whose states are database
//! terms, in two operating modes (paper §3):
//!
//! * **a-priori** — transitions from heuristic semantic rules over the
//!   schema, no training required;
//! * **feedback-based** — transitions learned from user-validated searches,
//!   combining count-based supervised updates (list Viterbi training) with
//!   optional Baum-Welch EM refinement over past query emissions.

pub mod configuration;
pub mod emission;

use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use quest_hmm::{list_viterbi, train, Emissions, Hmm, SupervisedTrainer};
use relstore::Catalog;

use crate::error::QuestError;
use crate::keyword::KeywordQuery;
use crate::semantics::{apriori_weights, SemanticRules};
use crate::term::Vocabulary;
use crate::wrapper::SourceWrapper;

pub use configuration::{dedup_configurations, Configuration};
pub use emission::{emission_row, emissions_for_query, EMISSION_FLOOR};

/// Smoothing used by the feedback trainer.
const FEEDBACK_SMOOTHING: f64 = 0.05;

/// The mutable half of the forward module: everything user feedback touches.
///
/// Kept behind a [`RwLock`] so one [`ForwardModule`] (and hence one engine)
/// can serve many threads concurrently — searches take the read lock, while
/// feedback recording and EM refinement take the write lock.
#[derive(Debug, Clone)]
struct FeedbackState {
    trainer: SupervisedTrainer,
    hmm: Option<Hmm>,
    count: usize,
    /// Monotonic version, bumped on every change that can alter decoding
    /// results. External caches key on this to stay transparent.
    epoch: u64,
    /// Emission histories retained for EM refinement.
    history: Vec<Emissions>,
}

/// The forward module.
///
/// The vocabulary and a-priori HMM are immutable after setup; the
/// feedback-trained model lives in an interior-mutability cell
/// (`RwLock<FeedbackState>`) so feedback can be recorded through a shared
/// reference.
#[derive(Debug)]
pub struct ForwardModule {
    vocab: Vocabulary,
    apriori: Hmm,
    feedback: RwLock<FeedbackState>,
}

impl Clone for ForwardModule {
    fn clone(&self) -> ForwardModule {
        ForwardModule {
            vocab: self.vocab.clone(),
            apriori: self.apriori.clone(),
            feedback: RwLock::new(self.state().clone()),
        }
    }
}

impl ForwardModule {
    /// Build the module from a catalog using the given semantic rules and
    /// the wrapper's ontology for generalization matching.
    pub fn new<W: SourceWrapper + ?Sized>(
        wrapper: &W,
        rules: &SemanticRules,
    ) -> Result<ForwardModule, QuestError> {
        let catalog = wrapper.catalog();
        let vocab = Vocabulary::from_catalog(catalog);
        if vocab.is_empty() {
            return Err(QuestError::BadParameter("empty catalog".into()));
        }
        let (init, trans) = apriori_weights(catalog, wrapper.ontology(), &vocab, rules);
        let apriori = Hmm::from_weights(init, trans)?;
        let trainer = SupervisedTrainer::new(vocab.len(), FEEDBACK_SMOOTHING)?;
        Ok(ForwardModule {
            vocab,
            apriori,
            feedback: RwLock::new(FeedbackState {
                trainer,
                hmm: None,
                count: 0,
                epoch: 0,
                history: Vec::new(),
            }),
        })
    }

    /// Read access to the feedback state; a poisoned lock (a panic in
    /// another thread mid-update) degrades to the last written state.
    fn state(&self) -> RwLockReadGuard<'_, FeedbackState> {
        self.feedback.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn state_mut(&self) -> RwLockWriteGuard<'_, FeedbackState> {
        self.feedback
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The HMM state vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The a-priori model.
    pub fn apriori_hmm(&self) -> &Hmm {
        &self.apriori
    }

    /// A snapshot of the feedback model, once any feedback has been
    /// recorded. Returns a clone: the live model may be retrained
    /// concurrently.
    pub fn feedback_hmm(&self) -> Option<Hmm> {
        self.state().hmm.clone()
    }

    /// Number of feedback observations recorded.
    pub fn feedback_count(&self) -> usize {
        self.state().count
    }

    /// Monotonic feedback version: bumped whenever recorded feedback or EM
    /// refinement changes what [`ForwardModule::top_k_feedback`] can return.
    /// Caches layered over the engine key on this to stay transparent.
    pub fn feedback_epoch(&self) -> u64 {
        self.state().epoch
    }

    /// Emission matrix for a query through the wrapper.
    pub fn emissions<W: SourceWrapper + ?Sized>(
        &self,
        wrapper: &W,
        query: &KeywordQuery,
    ) -> Emissions {
        emissions_for_query(wrapper, &self.vocab, query)
    }

    /// Top-k configurations in the a-priori mode.
    pub fn top_k_apriori(
        &self,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        self.decode(&self.apriori, emissions, k)
    }

    /// Top-k configurations in the feedback mode. Empty before any feedback.
    pub fn top_k_feedback(
        &self,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        match &self.state().hmm {
            Some(hmm) => self.decode(hmm, emissions, k),
            None => Ok(Vec::new()),
        }
    }

    fn decode(
        &self,
        hmm: &Hmm,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        let paths = list_viterbi(hmm, emissions, k)?;
        let configs = paths
            .into_iter()
            .map(|p| {
                let terms = p.states.iter().map(|&s| self.vocab.term(s)).collect();
                Configuration::new(terms, p.log_prob.exp())
            })
            .collect();
        Ok(dedup_configurations(configs))
    }

    /// Record user feedback on a configuration: `positive` marks a validated
    /// explanation, negative feedback discounts the transitions (paper §3:
    /// the parameter "should be decreased when 'negative' feedbacks are
    /// obtained").
    pub fn record_feedback(
        &self,
        config: &Configuration,
        positive: bool,
    ) -> Result<(), QuestError> {
        let states: Vec<usize> = config
            .terms
            .iter()
            .map(|t| {
                self.vocab
                    .state(*t)
                    .ok_or_else(|| QuestError::BadParameter("term outside vocabulary".into()))
            })
            .collect::<Result<_, _>>()?;
        let mut state = self.state_mut();
        if positive {
            state.trainer.observe(&states)?;
        } else {
            state.trainer.observe_negative(&states, 0.5)?;
        }
        state.count += 1;
        state.hmm = Some(state.trainer.build()?);
        state.epoch += 1;
        Ok(())
    }

    /// Retain a query's emission matrix for later EM refinement.
    pub fn remember_query(&self, emissions: Emissions) {
        self.state_mut().history.push(emissions);
    }

    /// Refine the feedback model with Baum-Welch EM over the remembered
    /// query emissions ("an Expectation-Maximization on-line training
    /// algorithm to a dataset composed of previous searches", paper §3).
    /// No-op when no feedback model exists yet or no history was kept.
    pub fn refine_with_em(&self, max_iters: usize) -> Result<usize, QuestError> {
        let mut state = self.state_mut();
        if state.history.is_empty() {
            return Ok(0);
        }
        let FeedbackState { hmm, history, .. } = &mut *state;
        let Some(hmm) = hmm.as_mut() else {
            return Ok(0);
        };
        let report = train(hmm, history, max_iters, 1e-6)?;
        state.epoch += 1;
        Ok(report.iterations)
    }

    /// Access the catalog-independent state count (for diagnostics).
    pub fn state_count(&self) -> usize {
        self.vocab.len()
    }

    /// Catalog consistency check helper for tests and debug assertions.
    pub fn check_catalog(&self, catalog: &Catalog) -> bool {
        self.vocab.len() == catalog.table_count() + 2 * catalog.attribute_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::DbTerm;
    use crate::wrapper::FullAccessWrapper;
    use relstore::{DataType, Database, Row};

    fn wrapper() -> FullAccessWrapper {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert("person", Row::new(vec![2.into(), "Michael Curtiz".into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        d.insert(
            "movie",
            Row::new(vec![11.into(), "Casablanca".into(), 2.into()]),
        )
        .unwrap();
        d.finalize();
        FullAccessWrapper::new(d)
    }

    #[test]
    fn apriori_maps_value_and_schema_keywords() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        assert!(fwd.check_catalog(w.catalog()));
        let q = KeywordQuery::parse("casablanca director").unwrap();
        let e = fwd.emissions(&w, &q);
        let top = fwd.top_k_apriori(&e, 5).unwrap();
        assert!(!top.is_empty());
        let title = w.catalog().attr_id("movie", "title").unwrap();
        // Best configuration: casablanca -> movie.title::value.
        assert_eq!(top[0].terms[0], DbTerm::Domain(title));
        // Scores are descending.
        for pair in top.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn feedback_mode_empty_before_training() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let q = KeywordQuery::parse("casablanca").unwrap();
        let e = fwd.emissions(&w, &q);
        assert!(fwd.top_k_feedback(&e, 3).unwrap().is_empty());
        assert_eq!(fwd.feedback_count(), 0);
    }

    #[test]
    fn feedback_shifts_ranking() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let q = KeywordQuery::parse("fleming wind").unwrap();
        let e = fwd.emissions(&w, &q);
        let name = w.catalog().attr_id("person", "name").unwrap();
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let validated = Configuration::new(vec![DbTerm::Domain(name), DbTerm::Domain(title)], 1.0);
        for _ in 0..5 {
            fwd.record_feedback(&validated, true).unwrap();
        }
        assert_eq!(fwd.feedback_count(), 5);
        let top = fwd.top_k_feedback(&e, 3).unwrap();
        assert!(!top.is_empty());
        assert_eq!(top[0].terms, validated.terms);
    }

    #[test]
    fn negative_feedback_demotes() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let name = w.catalog().attr_id("person", "name").unwrap();
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let good = Configuration::new(vec![DbTerm::Domain(name), DbTerm::Domain(title)], 1.0);
        let bad = Configuration::new(vec![DbTerm::Attribute(name), DbTerm::Domain(title)], 1.0);
        fwd.record_feedback(&good, true).unwrap();
        fwd.record_feedback(&bad, true).unwrap();
        // Retract the bad one.
        fwd.record_feedback(&bad, false).unwrap();
        let q = KeywordQuery::parse("fleming wind").unwrap();
        let e = fwd.emissions(&w, &q);
        let top = fwd.top_k_feedback(&e, 2).unwrap();
        assert_eq!(top[0].terms, good.terms);
    }

    #[test]
    fn em_refinement_runs() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let q = KeywordQuery::parse("casablanca director").unwrap();
        let e = fwd.emissions(&w, &q);
        fwd.remember_query(e.clone());
        // No feedback model yet: refinement is a no-op.
        assert_eq!(fwd.refine_with_em(5).unwrap(), 0);
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let cfg = Configuration::new(vec![DbTerm::Domain(title), DbTerm::Attribute(title)], 1.0);
        fwd.record_feedback(&cfg, true).unwrap();
        let iters = fwd.refine_with_em(5).unwrap();
        assert!(iters > 0);
        // Model remains a valid distribution after EM.
        let hmm = fwd.feedback_hmm().unwrap();
        assert!((hmm.initial_dist().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_catalog() {
        let c = Catalog::new();
        let d = Database::new(c).unwrap();
        let w = FullAccessWrapper::new(d);
        assert!(ForwardModule::new(&w, &SemanticRules::default()).is_err());
    }
}
