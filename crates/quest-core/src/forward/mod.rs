//! The forward module: keyword query → top-k configurations.
//!
//! Runs the list Viterbi algorithm over an HMM whose states are database
//! terms, in two operating modes (paper §3):
//!
//! * **a-priori** — transitions from heuristic semantic rules over the
//!   schema, no training required;
//! * **feedback-based** — transitions learned from user-validated searches,
//!   combining count-based supervised updates (list Viterbi training) with
//!   optional Baum-Welch EM refinement over past query emissions.

pub mod configuration;
pub mod emission;

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use quest_hmm::{list_viterbi, train, DecodedPath, Emissions, Hmm, ListDecoder, SupervisedTrainer};
use relstore::Catalog;

use crate::error::QuestError;
use crate::keyword::KeywordQuery;
use crate::semantics::{apriori_weights, SemanticRules};
use crate::term::{normalize_identifier, DbTerm, Vocabulary};
use crate::wrapper::{ontology::MiniOntology, PreparedKeyword, SourceWrapper};

pub use configuration::{dedup_configurations, Configuration};
pub use emission::{
    emission_row, emissions_for_query, emissions_for_query_reference, EMISSION_FLOOR,
};

/// Smoothing used by the feedback trainer.
const FEEDBACK_SMOOTHING: f64 = 0.05;

/// Distinct keywords whose metadata-similarity rows are memoized before the
/// memo is reset (keeps a pathological keyword stream from growing it
/// without bound).
const META_MEMO_CAP: usize = 1024;

/// Precomputed name-matching inputs of one *metadata* (table or attribute)
/// state: the normalized identifier plus any normalized annotation aliases.
/// `None` for domain states, which are scored by the wrapper's search
/// function instead.
#[derive(Debug, Clone)]
struct MetaState {
    name: String,
    aliases: Vec<String>,
}

/// The mutable half of the forward module: everything user feedback touches.
///
/// Kept behind a [`RwLock`] so one [`ForwardModule`] (and hence one engine)
/// can serve many threads concurrently — searches take the read lock, while
/// feedback recording and EM refinement take the write lock.
#[derive(Debug, Clone)]
struct FeedbackState {
    trainer: SupervisedTrainer,
    hmm: Option<Hmm>,
    count: usize,
    /// Monotonic version, bumped on every change that can alter decoding
    /// results. External caches key on this to stay transparent.
    epoch: u64,
    /// Emission histories retained for EM refinement.
    history: Vec<Emissions>,
}

/// The forward module.
///
/// The vocabulary and a-priori HMM are immutable after setup; the
/// feedback-trained model lives in an interior-mutability cell
/// (`RwLock<FeedbackState>`) so feedback can be recorded through a shared
/// reference.
#[derive(Debug)]
pub struct ForwardModule {
    vocab: Vocabulary,
    apriori: Hmm,
    feedback: RwLock<FeedbackState>,
    /// Ontology captured at setup for memoized metadata matching. The
    /// wrapper's ontology and annotations are construction-time inputs
    /// everywhere in this crate (there is no post-construction mutation
    /// path), so the capture cannot drift from live reads.
    ontology: MiniOntology,
    /// Per-state matching inputs; `None` for domain states.
    meta: Vec<Option<MetaState>>,
    /// Keyword → metadata-state emission scores. Metadata similarity is a
    /// pure function of `(normalized keyword, state name/aliases,
    /// ontology)` — all fixed at setup — so the memo is semantically
    /// transparent; it exists because string similarity dominates the cost
    /// of an uncached emission row and real query streams repeat keywords
    /// heavily.
    meta_memo: RwLock<HashMap<String, Arc<Vec<f64>>>>,
}

impl Clone for ForwardModule {
    fn clone(&self) -> ForwardModule {
        ForwardModule {
            vocab: self.vocab.clone(),
            apriori: self.apriori.clone(),
            feedback: RwLock::new(self.state().clone()),
            ontology: self.ontology.clone(),
            meta: self.meta.clone(),
            meta_memo: RwLock::new(
                self.meta_memo
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl ForwardModule {
    /// Build the module from a catalog using the given semantic rules and
    /// the wrapper's ontology for generalization matching.
    pub fn new<W: SourceWrapper + ?Sized>(
        wrapper: &W,
        rules: &SemanticRules,
    ) -> Result<ForwardModule, QuestError> {
        let catalog = wrapper.catalog();
        let vocab = Vocabulary::from_catalog(catalog);
        if vocab.is_empty() {
            return Err(QuestError::BadParameter("empty catalog".into()));
        }
        let (init, trans) = apriori_weights(catalog, wrapper.ontology(), &vocab, rules);
        let apriori = Hmm::from_weights(init, trans)?;
        let trainer = SupervisedTrainer::new(vocab.len(), FEEDBACK_SMOOTHING)?;
        // Capture the metadata-matching inputs (names, normalized aliases,
        // ontology) so memoized emission rows never have to consult the
        // wrapper for them again.
        let meta = (0..vocab.len())
            .map(|s| match vocab.term(s) {
                DbTerm::Domain(_) => None,
                term => {
                    let aliases = match (term, wrapper.annotations()) {
                        (DbTerm::Attribute(a), Some(anns)) => anns
                            .get(a)
                            .map(|ann| {
                                ann.aliases
                                    .iter()
                                    .map(|alias| normalize_identifier(alias))
                                    .collect()
                            })
                            .unwrap_or_default(),
                        _ => Vec::new(),
                    };
                    Some(MetaState {
                        name: vocab.name(s).to_string(),
                        aliases,
                    })
                }
            })
            .collect();
        Ok(ForwardModule {
            vocab,
            apriori,
            feedback: RwLock::new(FeedbackState {
                trainer,
                hmm: None,
                count: 0,
                epoch: 0,
                history: Vec::new(),
            }),
            ontology: wrapper.ontology().clone(),
            meta,
            meta_memo: RwLock::new(HashMap::new()),
        })
    }

    /// Read access to the feedback state; a poisoned lock (a panic in
    /// another thread mid-update) degrades to the last written state.
    fn state(&self) -> RwLockReadGuard<'_, FeedbackState> {
        self.feedback.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn state_mut(&self) -> RwLockWriteGuard<'_, FeedbackState> {
        self.feedback
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The HMM state vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The a-priori model.
    pub fn apriori_hmm(&self) -> &Hmm {
        &self.apriori
    }

    /// A snapshot of the feedback model, once any feedback has been
    /// recorded. Returns a clone: the live model may be retrained
    /// concurrently.
    pub fn feedback_hmm(&self) -> Option<Hmm> {
        self.state().hmm.clone()
    }

    /// Number of feedback observations recorded.
    pub fn feedback_count(&self) -> usize {
        self.state().count
    }

    /// Monotonic feedback version: bumped whenever recorded feedback or EM
    /// refinement changes what [`ForwardModule::top_k_feedback`] can return.
    /// Caches layered over the engine key on this to stay transparent.
    pub fn feedback_epoch(&self) -> u64 {
        self.state().epoch
    }

    /// Emission matrix for a query through the wrapper.
    pub fn emissions<W: SourceWrapper + ?Sized>(
        &self,
        wrapper: &W,
        query: &KeywordQuery,
    ) -> Emissions {
        emissions_for_query(wrapper, &self.vocab, query)
    }

    /// Emission matrix into reusable buffers — the hot-path form of
    /// [`ForwardModule::emissions`], bit-identical to it. Three layers of
    /// reuse: keywords are prepared once per query (index probes become one
    /// hash lookup per attribute), metadata-similarity rows are served from
    /// the per-engine keyword memo, and the matrix rows are written in
    /// place.
    pub fn emissions_into<W: SourceWrapper + ?Sized>(
        &self,
        wrapper: &W,
        query: &KeywordQuery,
        prepared: &mut Vec<PreparedKeyword>,
        out: &mut Emissions,
    ) {
        prepared.clear();
        prepared.extend(query.keywords.iter().map(|kw| wrapper.prepare_keyword(kw)));
        out.resize_with(query.keywords.len(), Vec::new);
        for (pk, row) in prepared.iter().zip(out.iter_mut()) {
            let meta_scores = self.metadata_scores(&pk.keyword().normalized);
            row.clear();
            row.reserve(self.vocab.len());
            for s in 0..self.vocab.len() {
                let score = match self.vocab.term(s) {
                    DbTerm::Domain(a) => wrapper.value_score_prepared(a, pk).clamp(0.0, 1.0),
                    _ => meta_scores[s],
                };
                row.push(score);
            }
            emission::apply_emission_floor(row);
        }
    }

    /// Metadata-state emission scores of one normalized keyword, memoized.
    /// Domain-state slots hold 0 and are overwritten by the caller's value
    /// probes. Scores are computed by the same `name_similarity` expression
    /// as the unmemoized path, on inputs captured at setup, so the memo is
    /// bit-transparent (pinned by the emission tests and
    /// `tests/perf_identity.rs`).
    fn metadata_scores(&self, keyword: &str) -> Arc<Vec<f64>> {
        if let Some(hit) = self
            .meta_memo
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(keyword)
        {
            return Arc::clone(hit);
        }
        let scores: Vec<f64> = self
            .meta
            .iter()
            .map(|state| match state {
                None => 0.0,
                Some(m) => {
                    emission::metadata_state_score(keyword, &m.name, &m.aliases, &self.ontology)
                }
            })
            .collect();
        let scores = Arc::new(scores);
        let mut memo = self
            .meta_memo
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if memo.len() >= META_MEMO_CAP {
            memo.clear();
        }
        memo.insert(keyword.to_string(), Arc::clone(&scores));
        scores
    }

    /// Emission matrix through the wrapper's reference (pre-optimization)
    /// scoring path — baseline for the bit-identity suite and benchmark.
    pub fn emissions_reference<W: SourceWrapper + ?Sized>(
        &self,
        wrapper: &W,
        query: &KeywordQuery,
    ) -> Emissions {
        emissions_for_query_reference(wrapper, &self.vocab, query)
    }

    /// Top-k configurations in the a-priori mode (reference decoder).
    pub fn top_k_apriori(
        &self,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        self.decode(&self.apriori, emissions, k)
    }

    /// Top-k configurations in the feedback mode. Empty before any feedback.
    /// (Reference decoder.)
    pub fn top_k_feedback(
        &self,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        match &self.state().hmm {
            Some(hmm) => self.decode(hmm, emissions, k),
            None => Ok(Vec::new()),
        }
    }

    /// [`ForwardModule::top_k_apriori`] through a reusable pruned decoder —
    /// bit-identical output, no per-call lattice allocation.
    pub fn top_k_apriori_with(
        &self,
        decoder: &mut ListDecoder,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        let paths = decoder.decode(&self.apriori, emissions, k)?;
        Ok(self.configurations_from(paths))
    }

    /// [`ForwardModule::top_k_feedback`] through a reusable pruned decoder.
    pub fn top_k_feedback_with(
        &self,
        decoder: &mut ListDecoder,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        let paths = match &self.state().hmm {
            Some(hmm) => decoder.decode(hmm, emissions, k)?,
            None => return Ok(Vec::new()),
        };
        Ok(self.configurations_from(paths))
    }

    fn decode(
        &self,
        hmm: &Hmm,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        let paths = list_viterbi(hmm, emissions, k)?;
        Ok(self.configurations_from(paths))
    }

    /// Decoded paths → deduplicated configurations (shared by the reference
    /// and scratch decode paths, so their mapping cannot drift).
    fn configurations_from(&self, paths: Vec<DecodedPath>) -> Vec<Configuration> {
        let configs = paths
            .into_iter()
            .map(|p| {
                let terms = p.states.iter().map(|&s| self.vocab.term(s)).collect();
                Configuration::new(terms, p.log_prob.exp())
            })
            .collect();
        dedup_configurations(configs)
    }

    /// Record user feedback on a configuration: `positive` marks a validated
    /// explanation, negative feedback discounts the transitions (paper §3:
    /// the parameter "should be decreased when 'negative' feedbacks are
    /// obtained").
    pub fn record_feedback(
        &self,
        config: &Configuration,
        positive: bool,
    ) -> Result<(), QuestError> {
        let states: Vec<usize> = config
            .terms
            .iter()
            .map(|t| {
                self.vocab
                    .state(*t)
                    .ok_or_else(|| QuestError::BadParameter("term outside vocabulary".into()))
            })
            .collect::<Result<_, _>>()?;
        let mut state = self.state_mut();
        if positive {
            state.trainer.observe(&states)?;
        } else {
            state.trainer.observe_negative(&states, 0.5)?;
        }
        state.count += 1;
        state.hmm = Some(state.trainer.build()?);
        state.epoch += 1;
        Ok(())
    }

    /// Retain a query's emission matrix for later EM refinement.
    pub fn remember_query(&self, emissions: Emissions) {
        self.state_mut().history.push(emissions);
    }

    /// Refine the feedback model with Baum-Welch EM over the remembered
    /// query emissions ("an Expectation-Maximization on-line training
    /// algorithm to a dataset composed of previous searches", paper §3).
    /// No-op when no feedback model exists yet or no history was kept.
    pub fn refine_with_em(&self, max_iters: usize) -> Result<usize, QuestError> {
        let mut state = self.state_mut();
        if state.history.is_empty() {
            return Ok(0);
        }
        let FeedbackState { hmm, history, .. } = &mut *state;
        let Some(hmm) = hmm.as_mut() else {
            return Ok(0);
        };
        let report = train(hmm, history, max_iters, 1e-6)?;
        state.epoch += 1;
        Ok(report.iterations)
    }

    /// Access the catalog-independent state count (for diagnostics).
    pub fn state_count(&self) -> usize {
        self.vocab.len()
    }

    /// Catalog consistency check helper for tests and debug assertions.
    pub fn check_catalog(&self, catalog: &Catalog) -> bool {
        self.vocab.len() == catalog.table_count() + 2 * catalog.attribute_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::DbTerm;
    use crate::wrapper::FullAccessWrapper;
    use relstore::{DataType, Database, Row};

    fn wrapper() -> FullAccessWrapper {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert("person", Row::new(vec![2.into(), "Michael Curtiz".into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        d.insert(
            "movie",
            Row::new(vec![11.into(), "Casablanca".into(), 2.into()]),
        )
        .unwrap();
        d.finalize();
        FullAccessWrapper::new(d)
    }

    #[test]
    fn apriori_maps_value_and_schema_keywords() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        assert!(fwd.check_catalog(w.catalog()));
        let q = KeywordQuery::parse("casablanca director").unwrap();
        let e = fwd.emissions(&w, &q);
        let top = fwd.top_k_apriori(&e, 5).unwrap();
        assert!(!top.is_empty());
        let title = w.catalog().attr_id("movie", "title").unwrap();
        // Best configuration: casablanca -> movie.title::value.
        assert_eq!(top[0].terms[0], DbTerm::Domain(title));
        // Scores are descending.
        for pair in top.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn feedback_mode_empty_before_training() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let q = KeywordQuery::parse("casablanca").unwrap();
        let e = fwd.emissions(&w, &q);
        assert!(fwd.top_k_feedback(&e, 3).unwrap().is_empty());
        assert_eq!(fwd.feedback_count(), 0);
    }

    #[test]
    fn feedback_shifts_ranking() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let q = KeywordQuery::parse("fleming wind").unwrap();
        let e = fwd.emissions(&w, &q);
        let name = w.catalog().attr_id("person", "name").unwrap();
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let validated = Configuration::new(vec![DbTerm::Domain(name), DbTerm::Domain(title)], 1.0);
        for _ in 0..5 {
            fwd.record_feedback(&validated, true).unwrap();
        }
        assert_eq!(fwd.feedback_count(), 5);
        let top = fwd.top_k_feedback(&e, 3).unwrap();
        assert!(!top.is_empty());
        assert_eq!(top[0].terms, validated.terms);
    }

    #[test]
    fn negative_feedback_demotes() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let name = w.catalog().attr_id("person", "name").unwrap();
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let good = Configuration::new(vec![DbTerm::Domain(name), DbTerm::Domain(title)], 1.0);
        let bad = Configuration::new(vec![DbTerm::Attribute(name), DbTerm::Domain(title)], 1.0);
        fwd.record_feedback(&good, true).unwrap();
        fwd.record_feedback(&bad, true).unwrap();
        // Retract the bad one.
        fwd.record_feedback(&bad, false).unwrap();
        let q = KeywordQuery::parse("fleming wind").unwrap();
        let e = fwd.emissions(&w, &q);
        let top = fwd.top_k_feedback(&e, 2).unwrap();
        assert_eq!(top[0].terms, good.terms);
    }

    #[test]
    fn em_refinement_runs() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let q = KeywordQuery::parse("casablanca director").unwrap();
        let e = fwd.emissions(&w, &q);
        fwd.remember_query(e.clone());
        // No feedback model yet: refinement is a no-op.
        assert_eq!(fwd.refine_with_em(5).unwrap(), 0);
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let cfg = Configuration::new(vec![DbTerm::Domain(title), DbTerm::Attribute(title)], 1.0);
        fwd.record_feedback(&cfg, true).unwrap();
        let iters = fwd.refine_with_em(5).unwrap();
        assert!(iters > 0);
        // Model remains a valid distribution after EM.
        let hmm = fwd.feedback_hmm().unwrap();
        assert!((hmm.initial_dist().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_catalog() {
        let c = Catalog::new();
        let d = Database::new(c).unwrap();
        let w = FullAccessWrapper::new(d);
        assert!(ForwardModule::new(&w, &SemanticRules::default()).is_err());
    }
}
