//! The forward module: keyword query → top-k configurations.
//!
//! Runs the list Viterbi algorithm over an HMM whose states are database
//! terms, in two operating modes (paper §3):
//!
//! * **a-priori** — transitions from heuristic semantic rules over the
//!   schema, no training required;
//! * **feedback-based** — transitions learned from user-validated searches,
//!   combining count-based supervised updates (list Viterbi training) with
//!   optional Baum-Welch EM refinement over past query emissions.

pub mod configuration;
pub mod emission;

use quest_hmm::{list_viterbi, train, Emissions, Hmm, SupervisedTrainer};
use relstore::Catalog;

use crate::error::QuestError;
use crate::keyword::KeywordQuery;
use crate::semantics::{apriori_weights, SemanticRules};
use crate::term::Vocabulary;
use crate::wrapper::SourceWrapper;

pub use configuration::{dedup_configurations, Configuration};
pub use emission::{emission_row, emissions_for_query, EMISSION_FLOOR};

/// Smoothing used by the feedback trainer.
const FEEDBACK_SMOOTHING: f64 = 0.05;

/// The forward module.
#[derive(Debug, Clone)]
pub struct ForwardModule {
    vocab: Vocabulary,
    apriori: Hmm,
    trainer: SupervisedTrainer,
    feedback_hmm: Option<Hmm>,
    feedback_count: usize,
    /// Emission histories retained for EM refinement.
    history: Vec<Emissions>,
}

impl ForwardModule {
    /// Build the module from a catalog using the given semantic rules and
    /// the wrapper's ontology for generalization matching.
    pub fn new<W: SourceWrapper + ?Sized>(
        wrapper: &W,
        rules: &SemanticRules,
    ) -> Result<ForwardModule, QuestError> {
        let catalog = wrapper.catalog();
        let vocab = Vocabulary::from_catalog(catalog);
        if vocab.is_empty() {
            return Err(QuestError::BadParameter("empty catalog".into()));
        }
        let (init, trans) = apriori_weights(catalog, wrapper.ontology(), &vocab, rules);
        let apriori = Hmm::from_weights(init, trans)?;
        let trainer = SupervisedTrainer::new(vocab.len(), FEEDBACK_SMOOTHING)?;
        Ok(ForwardModule {
            vocab,
            apriori,
            trainer,
            feedback_hmm: None,
            feedback_count: 0,
            history: Vec::new(),
        })
    }

    /// The HMM state vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The a-priori model.
    pub fn apriori_hmm(&self) -> &Hmm {
        &self.apriori
    }

    /// The feedback model, once any feedback has been recorded.
    pub fn feedback_hmm(&self) -> Option<&Hmm> {
        self.feedback_hmm.as_ref()
    }

    /// Number of feedback observations recorded.
    pub fn feedback_count(&self) -> usize {
        self.feedback_count
    }

    /// Emission matrix for a query through the wrapper.
    pub fn emissions<W: SourceWrapper + ?Sized>(
        &self,
        wrapper: &W,
        query: &KeywordQuery,
    ) -> Emissions {
        emissions_for_query(wrapper, &self.vocab, query)
    }

    /// Top-k configurations in the a-priori mode.
    pub fn top_k_apriori(
        &self,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        self.decode(&self.apriori, emissions, k)
    }

    /// Top-k configurations in the feedback mode. Empty before any feedback.
    pub fn top_k_feedback(
        &self,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        match &self.feedback_hmm {
            Some(hmm) => self.decode(hmm, emissions, k),
            None => Ok(Vec::new()),
        }
    }

    fn decode(
        &self,
        hmm: &Hmm,
        emissions: &Emissions,
        k: usize,
    ) -> Result<Vec<Configuration>, QuestError> {
        let paths = list_viterbi(hmm, emissions, k)?;
        let configs = paths
            .into_iter()
            .map(|p| {
                let terms = p.states.iter().map(|&s| self.vocab.term(s)).collect();
                Configuration::new(terms, p.log_prob.exp())
            })
            .collect();
        Ok(dedup_configurations(configs))
    }

    /// Record user feedback on a configuration: `positive` marks a validated
    /// explanation, negative feedback discounts the transitions (paper §3:
    /// the parameter "should be decreased when 'negative' feedbacks are
    /// obtained").
    pub fn record_feedback(
        &mut self,
        config: &Configuration,
        positive: bool,
    ) -> Result<(), QuestError> {
        let states: Vec<usize> = config
            .terms
            .iter()
            .map(|t| {
                self.vocab
                    .state(*t)
                    .ok_or_else(|| QuestError::BadParameter("term outside vocabulary".into()))
            })
            .collect::<Result<_, _>>()?;
        if positive {
            self.trainer.observe(&states)?;
        } else {
            self.trainer.observe_negative(&states, 0.5)?;
        }
        self.feedback_count += 1;
        self.feedback_hmm = Some(self.trainer.build()?);
        Ok(())
    }

    /// Retain a query's emission matrix for later EM refinement.
    pub fn remember_query(&mut self, emissions: Emissions) {
        self.history.push(emissions);
    }

    /// Refine the feedback model with Baum-Welch EM over the remembered
    /// query emissions ("an Expectation-Maximization on-line training
    /// algorithm to a dataset composed of previous searches", paper §3).
    /// No-op when no feedback model exists yet or no history was kept.
    pub fn refine_with_em(&mut self, max_iters: usize) -> Result<usize, QuestError> {
        let Some(hmm) = self.feedback_hmm.as_mut() else {
            return Ok(0);
        };
        if self.history.is_empty() {
            return Ok(0);
        }
        let report = train(hmm, &self.history, max_iters, 1e-6)?;
        Ok(report.iterations)
    }

    /// Access the catalog-independent state count (for diagnostics).
    pub fn state_count(&self) -> usize {
        self.vocab.len()
    }

    /// Catalog consistency check helper for tests and debug assertions.
    pub fn check_catalog(&self, catalog: &Catalog) -> bool {
        self.vocab.len() == catalog.table_count() + 2 * catalog.attribute_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::DbTerm;
    use crate::wrapper::FullAccessWrapper;
    use relstore::{DataType, Database, Row};

    fn wrapper() -> FullAccessWrapper {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert("person", Row::new(vec![2.into(), "Michael Curtiz".into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        d.insert(
            "movie",
            Row::new(vec![11.into(), "Casablanca".into(), 2.into()]),
        )
        .unwrap();
        d.finalize();
        FullAccessWrapper::new(d)
    }

    #[test]
    fn apriori_maps_value_and_schema_keywords() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        assert!(fwd.check_catalog(w.catalog()));
        let q = KeywordQuery::parse("casablanca director").unwrap();
        let e = fwd.emissions(&w, &q);
        let top = fwd.top_k_apriori(&e, 5).unwrap();
        assert!(!top.is_empty());
        let title = w.catalog().attr_id("movie", "title").unwrap();
        // Best configuration: casablanca -> movie.title::value.
        assert_eq!(top[0].terms[0], DbTerm::Domain(title));
        // Scores are descending.
        for pair in top.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn feedback_mode_empty_before_training() {
        let w = wrapper();
        let fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let q = KeywordQuery::parse("casablanca").unwrap();
        let e = fwd.emissions(&w, &q);
        assert!(fwd.top_k_feedback(&e, 3).unwrap().is_empty());
        assert_eq!(fwd.feedback_count(), 0);
    }

    #[test]
    fn feedback_shifts_ranking() {
        let w = wrapper();
        let mut fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let q = KeywordQuery::parse("fleming wind").unwrap();
        let e = fwd.emissions(&w, &q);
        let name = w.catalog().attr_id("person", "name").unwrap();
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let validated = Configuration::new(vec![DbTerm::Domain(name), DbTerm::Domain(title)], 1.0);
        for _ in 0..5 {
            fwd.record_feedback(&validated, true).unwrap();
        }
        assert_eq!(fwd.feedback_count(), 5);
        let top = fwd.top_k_feedback(&e, 3).unwrap();
        assert!(!top.is_empty());
        assert_eq!(top[0].terms, validated.terms);
    }

    #[test]
    fn negative_feedback_demotes() {
        let w = wrapper();
        let mut fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let name = w.catalog().attr_id("person", "name").unwrap();
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let good = Configuration::new(vec![DbTerm::Domain(name), DbTerm::Domain(title)], 1.0);
        let bad = Configuration::new(vec![DbTerm::Attribute(name), DbTerm::Domain(title)], 1.0);
        fwd.record_feedback(&good, true).unwrap();
        fwd.record_feedback(&bad, true).unwrap();
        // Retract the bad one.
        fwd.record_feedback(&bad, false).unwrap();
        let q = KeywordQuery::parse("fleming wind").unwrap();
        let e = fwd.emissions(&w, &q);
        let top = fwd.top_k_feedback(&e, 2).unwrap();
        assert_eq!(top[0].terms, good.terms);
    }

    #[test]
    fn em_refinement_runs() {
        let w = wrapper();
        let mut fwd = ForwardModule::new(&w, &SemanticRules::default()).unwrap();
        let q = KeywordQuery::parse("casablanca director").unwrap();
        let e = fwd.emissions(&w, &q);
        fwd.remember_query(e.clone());
        // No feedback model yet: refinement is a no-op.
        assert_eq!(fwd.refine_with_em(5).unwrap(), 0);
        let title = w.catalog().attr_id("movie", "title").unwrap();
        let cfg = Configuration::new(vec![DbTerm::Domain(title), DbTerm::Attribute(title)], 1.0);
        fwd.record_feedback(&cfg, true).unwrap();
        let iters = fwd.refine_with_em(5).unwrap();
        assert!(iters > 0);
        // Model remains a valid distribution after EM.
        let hmm = fwd.feedback_hmm().unwrap();
        assert!((hmm.initial_dist().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_catalog() {
        let c = Catalog::new();
        let d = Database::new(c).unwrap();
        let w = FullAccessWrapper::new(d);
        assert!(ForwardModule::new(&w, &SemanticRules::default()).is_err());
    }
}
