//! Schema summarization (paper reference \[7\]: Yang, Procopiuc, Srivastava,
//! "Summary graphs for relational database schemas", PVLDB 2011).
//!
//! QUEST borrows its mutual-information edge weighting from schema
//! summarization; this module completes the loop and provides the summary
//! itself: a ranking of tables by *importance* (size, connectivity and join
//! informativeness) and a summary graph over the top-n tables. The explain
//! browser uses it to orient users in unfamiliar schemas, and it doubles as
//! a diagnostic for the generated datasets (the hub tables of a star schema
//! must dominate).

use std::collections::HashMap;

use relstore::{Catalog, TableId};

use crate::wrapper::SourceWrapper;

/// Importance breakdown of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableImportance {
    /// The table.
    pub table: TableId,
    /// log(1 + row count) — bigger tables carry more content.
    pub size_score: f64,
    /// Number of FK edges touching the table (schema centrality).
    pub connectivity: usize,
    /// Sum of the NMI of adjacent joins (instance-backed centrality;
    /// neutral 0.5 per edge when statistics are unavailable).
    pub informativeness: f64,
    /// Combined score (weighted sum, used for ranking).
    pub score: f64,
}

/// A schema summary: tables ranked by importance, plus the FK edges among
/// the selected top tables.
#[derive(Debug, Clone)]
pub struct SchemaSummary {
    /// All tables, most important first.
    pub ranking: Vec<TableImportance>,
    /// FK edges `(from_table, to_table)` within the top-`n` selection.
    pub summary_edges: Vec<(TableId, TableId)>,
    /// How many tables the summary kept.
    pub kept: usize,
}

/// Weights of the importance components.
#[derive(Debug, Clone)]
pub struct SummaryWeights {
    /// Weight of `size_score`.
    pub size: f64,
    /// Weight of `connectivity`.
    pub connectivity: f64,
    /// Weight of `informativeness`.
    pub informativeness: f64,
}

impl Default for SummaryWeights {
    fn default() -> Self {
        SummaryWeights {
            size: 1.0,
            connectivity: 0.5,
            informativeness: 1.0,
        }
    }
}

/// Build a summary keeping the top-`n` tables.
pub fn summarize<W: SourceWrapper + ?Sized>(
    wrapper: &W,
    n: usize,
    weights: &SummaryWeights,
) -> SchemaSummary {
    let catalog = wrapper.catalog();
    let mut per_table: HashMap<TableId, TableImportance> = catalog
        .tables()
        .iter()
        .map(|t| {
            (
                t.id,
                TableImportance {
                    table: t.id,
                    size_score: 0.0,
                    connectivity: 0,
                    informativeness: 0.0,
                    score: 0.0,
                },
            )
        })
        .collect();

    // Size from the wrapper when the instance is readable; hidden sources
    // rank purely on schema structure.
    for t in catalog.tables() {
        let rows = wrapper.table_rows(t.id).unwrap_or(0) as f64;
        if let Some(imp) = per_table.get_mut(&t.id) {
            imp.size_score = (1.0 + rows).ln();
        }
    }
    for fk in catalog.foreign_keys() {
        let from_t = catalog.attribute(fk.from).table;
        let to_t = catalog.attribute(fk.to).table;
        let nmi = wrapper.join_informativeness(*fk).unwrap_or(0.5);
        for t in [from_t, to_t] {
            if let Some(imp) = per_table.get_mut(&t) {
                imp.connectivity += 1;
                imp.informativeness += nmi;
            }
        }
    }

    let mut ranking: Vec<TableImportance> = per_table
        .into_values()
        .map(|mut imp| {
            imp.score = weights.size * imp.size_score
                + weights.connectivity * imp.connectivity as f64
                + weights.informativeness * imp.informativeness;
            imp
        })
        .collect();
    ranking.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.table.cmp(&b.table))
    });

    let kept = n.min(ranking.len());
    let top: Vec<TableId> = ranking.iter().take(kept).map(|i| i.table).collect();
    let mut summary_edges = Vec::new();
    for fk in catalog.foreign_keys() {
        let from_t = catalog.attribute(fk.from).table;
        let to_t = catalog.attribute(fk.to).table;
        if top.contains(&from_t) && top.contains(&to_t) {
            let e = (from_t, to_t);
            if !summary_edges.contains(&e) {
                summary_edges.push(e);
            }
        }
    }
    SchemaSummary {
        ranking,
        summary_edges,
        kept,
    }
}

/// Render the summary as text (used by the explain browser).
pub fn render_summary(catalog: &Catalog, summary: &SchemaSummary) -> String {
    let mut out = String::new();
    out.push_str("schema summary (most important tables):\n");
    for imp in summary.ranking.iter().take(summary.kept) {
        out.push_str(&format!(
            "  [{}] score {:.2} (size {:.2}, degree {}, nmi {:.2})\n",
            catalog.table(imp.table).name,
            imp.score,
            imp.size_score,
            imp.connectivity,
            imp.informativeness,
        ));
    }
    for (a, b) in &summary.summary_edges {
        out.push_str(&format!(
            "  {} -> {}\n",
            catalog.table(*a).name,
            catalog.table(*b).name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::FullAccessWrapper;
    use relstore::{DataType, Database, Row};

    fn star_wrapper() -> FullAccessWrapper {
        // hub `movie` referenced by two satellites.
        let mut c = Catalog::new();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("cast_info")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("movie_id", DataType::Int, false, false)
            .unwrap()
            .finish();
        c.define_table("movie_genre")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col_opts("movie_id", DataType::Int, false, false)
            .unwrap()
            .finish();
        c.define_table("island")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("label", DataType::Text)
            .unwrap()
            .finish();
        c.add_foreign_key("cast_info", "movie_id", "movie").unwrap();
        c.add_foreign_key("movie_genre", "movie_id", "movie")
            .unwrap();
        let mut d = Database::new(c).unwrap();
        for i in 0..5i64 {
            d.insert("movie", Row::new(vec![i.into(), format!("m{i}").into()]))
                .unwrap();
        }
        for i in 0..10i64 {
            d.insert("cast_info", Row::new(vec![i.into(), (i % 5).into()]))
                .unwrap();
            d.insert("movie_genre", Row::new(vec![i.into(), (i % 5).into()]))
                .unwrap();
        }
        d.insert("island", Row::new(vec![0.into(), "alone".into()]))
            .unwrap();
        d.finalize();
        FullAccessWrapper::new(d)
    }

    #[test]
    fn hub_table_ranks_first() {
        let w = star_wrapper();
        let s = summarize(&w, 3, &SummaryWeights::default());
        assert_eq!(s.kept, 3);
        let names: Vec<&str> = s
            .ranking
            .iter()
            .map(|i| w.catalog().table(i.table).name.as_str())
            .collect();
        assert_eq!(names[0], "movie", "ranking: {names:?}");
        // The isolated table ranks last.
        assert_eq!(*names.last().unwrap(), "island");
    }

    #[test]
    fn summary_edges_stay_within_selection() {
        let w = star_wrapper();
        let s = summarize(&w, 2, &SummaryWeights::default());
        for (a, b) in &s.summary_edges {
            let top: Vec<TableId> = s.ranking.iter().take(2).map(|i| i.table).collect();
            assert!(top.contains(a) && top.contains(b));
        }
    }

    #[test]
    fn render_mentions_tables() {
        let w = star_wrapper();
        let s = summarize(&w, 3, &SummaryWeights::default());
        let text = render_summary(w.catalog(), &s);
        assert!(text.contains("[movie]"));
        assert!(text.contains("->"));
    }

    #[test]
    fn n_larger_than_tables_is_clamped() {
        let w = star_wrapper();
        let s = summarize(&w, 99, &SummaryWeights::default());
        assert_eq!(s.kept, 4);
    }

    #[test]
    fn weights_change_ranking() {
        let w = star_wrapper();
        // Connectivity-only: hub still wins; size-only with zero others:
        // all tables populated -> size ties dominate differently.
        let conn_only = SummaryWeights {
            size: 0.0,
            connectivity: 1.0,
            informativeness: 0.0,
        };
        let s = summarize(&w, 1, &conn_only);
        assert_eq!(w.catalog().table(s.ranking[0].table).name, "movie");
    }
}
