//! The backward module: configuration → top-k interpretations.
//!
//! "The backward module adopts a Steiner Tree-based technique to select, for
//! each configuration, the top-k paths joining the involved database schema
//! elements" (paper §3). The tree is grown over the attribute-level
//! [`SchemaGraph`] — not the instance — which keeps the graph small,
//! update-stable, uniform in edge semantics, and computable without instance
//! access (the paper's four advantages).

pub mod interpretation;
pub mod schema_graph;
pub mod summary;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use quest_graph::{top_k_steiner, top_k_steiner_with, GraphError, SteinerConfig, SteinerScratch};
use relstore::Catalog;

use crate::error::QuestError;
use crate::forward::Configuration;
use crate::wrapper::SourceWrapper;

pub use interpretation::{dedup_interpretations, Interpretation};
pub use schema_graph::{hub_attr, SchemaEdgeKind, SchemaGraph, SchemaGraphWeights};
pub use summary::{render_summary, summarize, SchemaSummary, SummaryWeights, TableImportance};

/// Join-path templates are keyed by configuration schema *shape*: the
/// sorted, deduped terminal node set plus the requested `k` — not the
/// query's terms. Distinct queries (and distinct configurations within one
/// query) that anchor to the same schema elements share one template.
type TemplateKey = (Vec<quest_graph::NodeId>, usize);

/// Gauges of the per-engine join-template memo at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateCacheStats {
    /// Lookups answered from a memoized template.
    pub hits: u64,
    /// Lookups that ran the Steiner enumeration.
    pub misses: u64,
    /// Templates currently memoized.
    pub entries: usize,
}

/// The backward module: owns the schema graph and the per-engine
/// join-template memo.
///
/// The memo lives here — not in a per-query scratch — because join-path
/// templates are a pure function of the schema graph: they stay valid for
/// the engine's whole lifetime and are shared across queries and threads.
/// Invalidation is structural: `Quest::resync` (the funnel for every data
/// mutation) rebuilds the `BackwardModule`, so a schema-affecting change
/// starts from an empty memo by construction.
#[derive(Debug)]
pub struct BackwardModule {
    schema: SchemaGraph,
    templates: RwLock<HashMap<TemplateKey, Arc<Vec<Interpretation>>>>,
    template_hits: AtomicU64,
    template_misses: AtomicU64,
}

impl Clone for BackwardModule {
    fn clone(&self) -> Self {
        // A cloned engine is a fresh engine: templates are pure derived
        // data, so the clone starts with a cold memo and zeroed gauges.
        BackwardModule::with_schema(self.schema.clone())
    }
}

impl BackwardModule {
    fn with_schema(schema: SchemaGraph) -> Self {
        BackwardModule {
            schema,
            templates: RwLock::new(HashMap::new()),
            template_hits: AtomicU64::new(0),
            template_misses: AtomicU64::new(0),
        }
    }

    /// Build from a wrapper with the given weights.
    pub fn new<W: SourceWrapper + ?Sized>(wrapper: &W, weights: &SchemaGraphWeights) -> Self {
        BackwardModule::with_schema(SchemaGraph::build(wrapper, weights))
    }

    /// Build with the E8 ablation (uniform FK weights).
    pub fn new_uniform<W: SourceWrapper + ?Sized>(wrapper: &W) -> Self {
        BackwardModule::with_schema(SchemaGraph::build_uniform(wrapper))
    }

    /// The schema graph.
    pub fn schema_graph(&self) -> &SchemaGraph {
        &self.schema
    }

    /// Terminal nodes of a configuration: the anchor attribute of each
    /// distinct mapped term (paper: the tree joins "the database elements
    /// discovered during the first task").
    pub fn terminals(&self, catalog: &Catalog, config: &Configuration) -> Vec<quest_graph::NodeId> {
        let mut nodes: Vec<quest_graph::NodeId> = config
            .terms
            .iter()
            .map(|t| self.schema.node_of(t.anchor_attr(catalog)))
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Top-k interpretations for one configuration, best first. A
    /// configuration whose elements cannot be joined (disconnected schema)
    /// yields no interpretations rather than an error — it simply produces
    /// no explanations downstream.
    pub fn interpretations(
        &self,
        catalog: &Catalog,
        config: &Configuration,
        k: usize,
    ) -> Result<Vec<Interpretation>, QuestError> {
        self.interpretations_for_terminals(&self.terminals(catalog, config), k)
    }

    /// Top-k interpretations for an already-resolved terminal set (sorted,
    /// deduped — as produced by [`BackwardModule::terminals`]).
    ///
    /// Interpretations are a pure function of `(terminals, k)` for a fixed
    /// schema graph; distinct configurations of one query frequently anchor
    /// to the *same* terminals, so the per-query scratch memoizes on this
    /// entry point (see `SearchScratch`).
    pub fn interpretations_for_terminals(
        &self,
        terminals: &[quest_graph::NodeId],
        k: usize,
    ) -> Result<Vec<Interpretation>, QuestError> {
        if terminals.is_empty() {
            return Ok(Vec::new());
        }
        let cfg = SteinerConfig::top_k(k);
        match top_k_steiner(self.schema.graph(), terminals, &cfg) {
            Ok(trees) => Ok(dedup_interpretations(
                trees.into_iter().map(Interpretation::from_tree).collect(),
            )),
            Err(GraphError::Disconnected) => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// [`BackwardModule::interpretations_for_terminals`] through the
    /// per-engine join-template memo and the scratch-reused, pruned Steiner
    /// enumeration — the backward hot path.
    ///
    /// A miss runs `top_k_steiner_with` (bit-identical to the reference's
    /// `top_k_steiner`, pinned by `quest-graph`'s property suite) and
    /// memoizes the deduped interpretations; a hit clones the memoized
    /// template. Two threads racing on the same miss both compute the same
    /// pure value, so the second insert overwrites with an equal payload.
    pub fn interpretations_for_terminals_cached(
        &self,
        terminals: &[quest_graph::NodeId],
        k: usize,
        scratch: &mut SteinerScratch,
    ) -> Result<Vec<Interpretation>, QuestError> {
        if terminals.is_empty() {
            return Ok(Vec::new());
        }
        let key: TemplateKey = (terminals.to_vec(), k);
        if let Some(hit) = self
            .templates
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.template_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.as_ref().clone());
        }
        self.template_misses.fetch_add(1, Ordering::Relaxed);
        let cfg = SteinerConfig::top_k(k);
        let computed = match top_k_steiner_with(self.schema.graph(), terminals, &cfg, scratch) {
            Ok(trees) => {
                dedup_interpretations(trees.into_iter().map(Interpretation::from_tree).collect())
            }
            Err(GraphError::Disconnected) => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        self.templates
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, Arc::new(computed.clone()));
        Ok(computed)
    }

    /// Hit/miss/entry gauges of the join-template memo.
    pub fn template_stats(&self) -> TemplateCacheStats {
        TemplateCacheStats {
            hits: self.template_hits.load(Ordering::Relaxed),
            misses: self.template_misses.load(Ordering::Relaxed),
            entries: self
                .templates
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
        }
    }

    /// Convenience: interpretations keyed by terminal attributes only (used
    /// by benchmarks that bypass the forward step).
    pub fn interpretations_for_attrs(
        &self,
        attrs: &[relstore::AttrId],
        k: usize,
    ) -> Result<Vec<Interpretation>, QuestError> {
        let mut terminals: Vec<_> = attrs.iter().map(|a| self.schema.node_of(*a)).collect();
        terminals.sort();
        terminals.dedup();
        if terminals.is_empty() {
            return Ok(Vec::new());
        }
        match top_k_steiner(self.schema.graph(), &terminals, &SteinerConfig::top_k(k)) {
            Ok(trees) => Ok(dedup_interpretations(
                trees.into_iter().map(Interpretation::from_tree).collect(),
            )),
            Err(GraphError::Disconnected) => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// The distinct tables a configuration's interpretation would span if it
    /// used only its own terms (diagnostics).
    pub fn config_tables(&self, catalog: &Catalog, config: &Configuration) -> usize {
        config.tables(catalog).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::DbTerm;
    use crate::wrapper::FullAccessWrapper;
    use relstore::{DataType, Database, Row};

    fn wrapper() -> FullAccessWrapper {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        // An island table with no FK at all.
        c.define_table("island")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("label", DataType::Text)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert("movie", Row::new(vec![10.into(), "Wind".into(), 1.into()]))
            .unwrap();
        d.insert("island", Row::new(vec![1.into(), "Atlantis".into()]))
            .unwrap();
        d.finalize();
        FullAccessWrapper::new(d)
    }

    #[test]
    fn cross_table_configuration_joins_via_fk() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let cfg = Configuration::new(
            vec![
                DbTerm::Domain(c.attr_id("movie", "title").unwrap()),
                DbTerm::Domain(c.attr_id("person", "name").unwrap()),
            ],
            1.0,
        );
        let interps = b.interpretations(c, &cfg, 3).unwrap();
        assert!(!interps.is_empty());
        let joins = interps[0].join_conditions(b.schema_graph());
        assert_eq!(joins.len(), 1, "one FK hop expected");
        assert!(interps[0].score > 0.0);
    }

    #[test]
    fn single_table_configuration_is_trivial() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let title = c.attr_id("movie", "title").unwrap();
        let cfg = Configuration::new(vec![DbTerm::Domain(title)], 1.0);
        let interps = b.interpretations(c, &cfg, 3).unwrap();
        assert_eq!(interps.len(), 1);
        assert!(interps[0].tree.is_empty());
        assert_eq!(interps[0].score, 1.0);
    }

    #[test]
    fn disconnected_terms_yield_no_interpretations() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let cfg = Configuration::new(
            vec![
                DbTerm::Domain(c.attr_id("movie", "title").unwrap()),
                DbTerm::Domain(c.attr_id("island", "label").unwrap()),
            ],
            1.0,
        );
        assert!(b.interpretations(c, &cfg, 3).unwrap().is_empty());
    }

    #[test]
    fn table_terms_anchor_at_primary_key() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let cfg = Configuration::new(
            vec![
                DbTerm::Table(c.table_id("movie").unwrap()),
                DbTerm::Domain(c.attr_id("person", "name").unwrap()),
            ],
            1.0,
        );
        let terms = b.terminals(c, &cfg);
        assert_eq!(terms.len(), 2);
        let interps = b.interpretations(c, &cfg, 2).unwrap();
        assert!(!interps.is_empty());
    }

    #[test]
    fn interpretations_sorted_and_distinct() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let cfg = Configuration::new(
            vec![
                DbTerm::Domain(c.attr_id("movie", "title").unwrap()),
                DbTerm::Domain(c.attr_id("person", "name").unwrap()),
            ],
            1.0,
        );
        let interps = b.interpretations(c, &cfg, 5).unwrap();
        for wpair in interps.windows(2) {
            assert!(wpair[0].score >= wpair[1].score);
        }
        for (i, a) in interps.iter().enumerate() {
            for bb in interps.iter().skip(i + 1) {
                assert_ne!(a.key(), bb.key());
            }
        }
    }

    #[test]
    fn template_memo_is_bit_identical_and_counts() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let cfg = Configuration::new(
            vec![
                DbTerm::Domain(c.attr_id("movie", "title").unwrap()),
                DbTerm::Domain(c.attr_id("person", "name").unwrap()),
            ],
            1.0,
        );
        let terminals = b.terminals(c, &cfg);
        let reference = b.interpretations_for_terminals(&terminals, 3).unwrap();
        let mut scratch = SteinerScratch::new();
        let cold = b
            .interpretations_for_terminals_cached(&terminals, 3, &mut scratch)
            .unwrap();
        let warm = b
            .interpretations_for_terminals_cached(&terminals, 3, &mut scratch)
            .unwrap();
        for got in [&cold, &warm] {
            assert_eq!(got.len(), reference.len());
            for (x, y) in reference.iter().zip(got.iter()) {
                assert_eq!(x.key(), y.key());
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
        let stats = b.template_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        // Different k is a different template; a clone starts cold.
        b.interpretations_for_terminals_cached(&terminals, 1, &mut scratch)
            .unwrap();
        assert_eq!(b.template_stats().entries, 2);
        assert_eq!(b.clone().template_stats(), TemplateCacheStats::default());
    }

    #[test]
    fn attrs_entry_point() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let interps = b
            .interpretations_for_attrs(
                &[
                    c.attr_id("movie", "title").unwrap(),
                    c.attr_id("person", "name").unwrap(),
                ],
                2,
            )
            .unwrap();
        assert!(!interps.is_empty());
        assert!(b.interpretations_for_attrs(&[], 2).unwrap().is_empty());
    }
}
