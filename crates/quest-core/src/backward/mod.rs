//! The backward module: configuration → top-k interpretations.
//!
//! "The backward module adopts a Steiner Tree-based technique to select, for
//! each configuration, the top-k paths joining the involved database schema
//! elements" (paper §3). The tree is grown over the attribute-level
//! [`SchemaGraph`] — not the instance — which keeps the graph small,
//! update-stable, uniform in edge semantics, and computable without instance
//! access (the paper's four advantages).

pub mod interpretation;
pub mod schema_graph;
pub mod summary;

use quest_graph::{top_k_steiner, GraphError, SteinerConfig};
use relstore::Catalog;

use crate::error::QuestError;
use crate::forward::Configuration;
use crate::wrapper::SourceWrapper;

pub use interpretation::{dedup_interpretations, Interpretation};
pub use schema_graph::{hub_attr, SchemaEdgeKind, SchemaGraph, SchemaGraphWeights};
pub use summary::{render_summary, summarize, SchemaSummary, SummaryWeights, TableImportance};

/// The backward module: owns the schema graph.
#[derive(Debug, Clone)]
pub struct BackwardModule {
    schema: SchemaGraph,
}

impl BackwardModule {
    /// Build from a wrapper with the given weights.
    pub fn new<W: SourceWrapper + ?Sized>(wrapper: &W, weights: &SchemaGraphWeights) -> Self {
        BackwardModule {
            schema: SchemaGraph::build(wrapper, weights),
        }
    }

    /// Build with the E8 ablation (uniform FK weights).
    pub fn new_uniform<W: SourceWrapper + ?Sized>(wrapper: &W) -> Self {
        BackwardModule {
            schema: SchemaGraph::build_uniform(wrapper),
        }
    }

    /// The schema graph.
    pub fn schema_graph(&self) -> &SchemaGraph {
        &self.schema
    }

    /// Terminal nodes of a configuration: the anchor attribute of each
    /// distinct mapped term (paper: the tree joins "the database elements
    /// discovered during the first task").
    pub fn terminals(&self, catalog: &Catalog, config: &Configuration) -> Vec<quest_graph::NodeId> {
        let mut nodes: Vec<quest_graph::NodeId> = config
            .terms
            .iter()
            .map(|t| self.schema.node_of(t.anchor_attr(catalog)))
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Top-k interpretations for one configuration, best first. A
    /// configuration whose elements cannot be joined (disconnected schema)
    /// yields no interpretations rather than an error — it simply produces
    /// no explanations downstream.
    pub fn interpretations(
        &self,
        catalog: &Catalog,
        config: &Configuration,
        k: usize,
    ) -> Result<Vec<Interpretation>, QuestError> {
        self.interpretations_for_terminals(&self.terminals(catalog, config), k)
    }

    /// Top-k interpretations for an already-resolved terminal set (sorted,
    /// deduped — as produced by [`BackwardModule::terminals`]).
    ///
    /// Interpretations are a pure function of `(terminals, k)` for a fixed
    /// schema graph; distinct configurations of one query frequently anchor
    /// to the *same* terminals, so the per-query scratch memoizes on this
    /// entry point (see `SearchScratch`).
    pub fn interpretations_for_terminals(
        &self,
        terminals: &[quest_graph::NodeId],
        k: usize,
    ) -> Result<Vec<Interpretation>, QuestError> {
        if terminals.is_empty() {
            return Ok(Vec::new());
        }
        let cfg = SteinerConfig::top_k(k);
        match top_k_steiner(self.schema.graph(), terminals, &cfg) {
            Ok(trees) => Ok(dedup_interpretations(
                trees.into_iter().map(Interpretation::from_tree).collect(),
            )),
            Err(GraphError::Disconnected) => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// Convenience: interpretations keyed by terminal attributes only (used
    /// by benchmarks that bypass the forward step).
    pub fn interpretations_for_attrs(
        &self,
        attrs: &[relstore::AttrId],
        k: usize,
    ) -> Result<Vec<Interpretation>, QuestError> {
        let mut terminals: Vec<_> = attrs.iter().map(|a| self.schema.node_of(*a)).collect();
        terminals.sort();
        terminals.dedup();
        if terminals.is_empty() {
            return Ok(Vec::new());
        }
        match top_k_steiner(self.schema.graph(), &terminals, &SteinerConfig::top_k(k)) {
            Ok(trees) => Ok(dedup_interpretations(
                trees.into_iter().map(Interpretation::from_tree).collect(),
            )),
            Err(GraphError::Disconnected) => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// The distinct tables a configuration's interpretation would span if it
    /// used only its own terms (diagnostics).
    pub fn config_tables(&self, catalog: &Catalog, config: &Configuration) -> usize {
        config.tables(catalog).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::DbTerm;
    use crate::wrapper::FullAccessWrapper;
    use relstore::{DataType, Database, Row};

    fn wrapper() -> FullAccessWrapper {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        // An island table with no FK at all.
        c.define_table("island")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("label", DataType::Text)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert("movie", Row::new(vec![10.into(), "Wind".into(), 1.into()]))
            .unwrap();
        d.insert("island", Row::new(vec![1.into(), "Atlantis".into()]))
            .unwrap();
        d.finalize();
        FullAccessWrapper::new(d)
    }

    #[test]
    fn cross_table_configuration_joins_via_fk() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let cfg = Configuration::new(
            vec![
                DbTerm::Domain(c.attr_id("movie", "title").unwrap()),
                DbTerm::Domain(c.attr_id("person", "name").unwrap()),
            ],
            1.0,
        );
        let interps = b.interpretations(c, &cfg, 3).unwrap();
        assert!(!interps.is_empty());
        let joins = interps[0].join_conditions(b.schema_graph());
        assert_eq!(joins.len(), 1, "one FK hop expected");
        assert!(interps[0].score > 0.0);
    }

    #[test]
    fn single_table_configuration_is_trivial() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let title = c.attr_id("movie", "title").unwrap();
        let cfg = Configuration::new(vec![DbTerm::Domain(title)], 1.0);
        let interps = b.interpretations(c, &cfg, 3).unwrap();
        assert_eq!(interps.len(), 1);
        assert!(interps[0].tree.is_empty());
        assert_eq!(interps[0].score, 1.0);
    }

    #[test]
    fn disconnected_terms_yield_no_interpretations() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let cfg = Configuration::new(
            vec![
                DbTerm::Domain(c.attr_id("movie", "title").unwrap()),
                DbTerm::Domain(c.attr_id("island", "label").unwrap()),
            ],
            1.0,
        );
        assert!(b.interpretations(c, &cfg, 3).unwrap().is_empty());
    }

    #[test]
    fn table_terms_anchor_at_primary_key() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let cfg = Configuration::new(
            vec![
                DbTerm::Table(c.table_id("movie").unwrap()),
                DbTerm::Domain(c.attr_id("person", "name").unwrap()),
            ],
            1.0,
        );
        let terms = b.terminals(c, &cfg);
        assert_eq!(terms.len(), 2);
        let interps = b.interpretations(c, &cfg, 2).unwrap();
        assert!(!interps.is_empty());
    }

    #[test]
    fn interpretations_sorted_and_distinct() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let cfg = Configuration::new(
            vec![
                DbTerm::Domain(c.attr_id("movie", "title").unwrap()),
                DbTerm::Domain(c.attr_id("person", "name").unwrap()),
            ],
            1.0,
        );
        let interps = b.interpretations(c, &cfg, 5).unwrap();
        for wpair in interps.windows(2) {
            assert!(wpair[0].score >= wpair[1].score);
        }
        for (i, a) in interps.iter().enumerate() {
            for bb in interps.iter().skip(i + 1) {
                assert_ne!(a.key(), bb.key());
            }
        }
    }

    #[test]
    fn attrs_entry_point() {
        let w = wrapper();
        let c = w.catalog();
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        let interps = b
            .interpretations_for_attrs(
                &[
                    c.attr_id("movie", "title").unwrap(),
                    c.attr_id("person", "name").unwrap(),
                ],
                2,
            )
            .unwrap();
        assert!(!interps.is_empty());
        assert!(b.interpretations_for_attrs(&[], 2).unwrap().is_empty());
    }
}
