//! Interpretations: join paths materializing a configuration's semantics.
//!
//! "Each join-path is a materialization of certain semantics that likely
//! represents the semantics that the user had in mind ... We refer to these
//! join-paths as interpretations" (paper §1).

use quest_graph::SteinerTree;
use relstore::sql::JoinCondition;
use relstore::{Catalog, TableId};

use crate::backward::schema_graph::{SchemaEdgeKind, SchemaGraph};

/// A join path (schema-level Steiner tree) with a confidence score.
#[derive(Debug, Clone, PartialEq)]
pub struct Interpretation {
    /// The Steiner tree over the schema graph.
    pub tree: SteinerTree,
    /// Confidence derived from the tree cost: `1 / (1 + cost)`.
    pub score: f64,
}

impl Interpretation {
    /// Wrap a tree, deriving its score from the cost.
    pub fn from_tree(tree: SteinerTree) -> Interpretation {
        let score = 1.0 / (1.0 + tree.cost());
        Interpretation { tree, score }
    }

    /// Distinct tables traversed by this join path.
    pub fn tables(&self, schema: &SchemaGraph, catalog: &Catalog) -> Vec<TableId> {
        let mut ts: Vec<TableId> = self
            .tree
            .nodes()
            .into_iter()
            .map(|n| catalog.attribute(schema.attr_of(n)).table)
            .collect();
        ts.sort();
        ts.dedup();
        ts
    }

    /// The SQL equi-join conditions implied by the tree's foreign-key edges
    /// (intra-table edges require no join).
    pub fn join_conditions(&self, schema: &SchemaGraph) -> Vec<JoinCondition> {
        self.tree
            .edges()
            .iter()
            .filter_map(|&(a, b)| match schema.edge_kind(a, b) {
                Some(SchemaEdgeKind::ForeignKey(fk)) => Some(JoinCondition {
                    left: fk.from,
                    right: fk.to,
                }),
                _ => None,
            })
            .collect()
    }

    /// Identity key for deduplication: the canonical edge list.
    pub fn key(&self) -> &[(quest_graph::NodeId, quest_graph::NodeId)] {
        self.tree.edges()
    }

    /// Render the join path as text, e.g.
    /// `movie.director_id=person.id; movie.id-movie.title`.
    pub fn describe(&self, schema: &SchemaGraph, catalog: &Catalog) -> String {
        if self.tree.is_empty() {
            let t = self
                .tree
                .terminals()
                .first()
                .map(|n| {
                    catalog
                        .table(catalog.attribute(schema.attr_of(*n)).table)
                        .name
                        .clone()
                })
                .unwrap_or_default();
            return format!("single table {t}");
        }
        self.tree
            .edges()
            .iter()
            .map(|&(a, b)| match schema.edge_kind(a, b) {
                // FK edges render in declaration order (fk.from = fk.to),
                // independent of node-id canonicalization.
                Some(SchemaEdgeKind::ForeignKey(fk)) => format!(
                    "{}={}",
                    catalog.qualified_name(fk.from),
                    catalog.qualified_name(fk.to)
                ),
                _ => format!(
                    "{}-{}",
                    catalog.qualified_name(schema.attr_of(a)),
                    catalog.qualified_name(schema.attr_of(b))
                ),
            })
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Deduplicate interpretations by tree identity, keeping best scores,
/// descending.
pub fn dedup_interpretations(mut items: Vec<Interpretation>) -> Vec<Interpretation> {
    items.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out: Vec<Interpretation> = Vec::new();
    for i in items {
        if !out.iter().any(|o| o.key() == i.key()) {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::schema_graph::SchemaGraphWeights;
    use crate::wrapper::{FullAccessWrapper, SourceWrapper};
    use quest_graph::NodeId;
    use relstore::{DataType, Database, Row};

    fn setup() -> (FullAccessWrapper, SchemaGraph) {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Fleming".into()]))
            .unwrap();
        d.insert("movie", Row::new(vec![10.into(), "Wind".into(), 1.into()]))
            .unwrap();
        d.finalize();
        let w = FullAccessWrapper::new(d);
        let g = SchemaGraph::build(&w, &SchemaGraphWeights::default());
        (w, g)
    }

    fn tree_over(
        g: &SchemaGraph,
        w: &FullAccessWrapper,
        pairs: &[(&str, &str, &str, &str)],
        terms: &[(&str, &str)],
    ) -> SteinerTree {
        let c = w.catalog();
        let edges: Vec<(NodeId, NodeId)> = pairs
            .iter()
            .map(|(t1, a1, t2, a2)| {
                (
                    g.node_of(c.attr_id(t1, a1).unwrap()),
                    g.node_of(c.attr_id(t2, a2).unwrap()),
                )
            })
            .collect();
        let terminals = terms
            .iter()
            .map(|(t, a)| g.node_of(c.attr_id(t, a).unwrap()))
            .collect();
        SteinerTree::new(edges, 2.0, terminals)
    }

    #[test]
    fn join_conditions_from_fk_edges() {
        let (w, g) = setup();
        let tree = tree_over(
            &g,
            &w,
            &[
                ("movie", "title", "movie", "id"),
                ("movie", "director_id", "movie", "id"),
                ("movie", "director_id", "person", "id"),
                ("person", "id", "person", "name"),
            ],
            &[("movie", "title"), ("person", "name")],
        );
        let interp = Interpretation::from_tree(tree);
        let joins = interp.join_conditions(&g);
        assert_eq!(joins.len(), 1);
        let c = w.catalog();
        assert_eq!(joins[0].left, c.attr_id("movie", "director_id").unwrap());
        assert_eq!(joins[0].right, c.attr_id("person", "id").unwrap());
        assert_eq!(
            interp.tables(&g, c),
            vec![c.table_id("person").unwrap(), c.table_id("movie").unwrap()]
        );
        let desc = interp.describe(&g, c);
        assert!(desc.contains("movie.director_id=person.id"));
        assert!(desc.contains("movie.id-movie.title"));
    }

    #[test]
    fn score_decreases_with_cost() {
        let (w, g) = setup();
        let cheap = Interpretation::from_tree(tree_over(
            &g,
            &w,
            &[("movie", "title", "movie", "id")],
            &[("movie", "title"), ("movie", "id")],
        ));
        let costly = Interpretation::from_tree(SteinerTree::new(vec![], 10.0, vec![]));
        assert!(cheap.score > costly.score);
        let _ = w;
    }

    #[test]
    fn dedup_keeps_best() {
        let (w, g) = setup();
        let t = tree_over(
            &g,
            &w,
            &[("movie", "title", "movie", "id")],
            &[("movie", "title")],
        );
        let a = Interpretation {
            tree: t.clone(),
            score: 0.9,
        };
        let b = Interpretation {
            tree: t,
            score: 0.4,
        };
        let out = dedup_interpretations(vec![b, a]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, 0.9);
    }

    #[test]
    fn single_table_description() {
        let (w, g) = setup();
        let c = w.catalog();
        let n = g.node_of(c.attr_id("movie", "title").unwrap());
        let interp = Interpretation::from_tree(SteinerTree::new(vec![], 0.0, vec![n]));
        assert_eq!(interp.describe(&g, c), "single table movie");
    }
}
