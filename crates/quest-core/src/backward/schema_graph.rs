//! The schema graph: QUEST's backward search space.
//!
//! "We model the relational schema as a weighted graph where there is a node
//! for each attribute in the database and edges connecting (i) the node
//! representing the primary key of a table with all the other attributes in
//! the same table, and (ii) nodes associated with couples of primary-foreign
//! keys" (paper §3). Foreign-key edges are weighted with a mutual-information
//! based distance so that Steiner trees prefer join paths that actually
//! contain tuples; when the instance is hidden, a neutral default applies.

use std::collections::HashMap;

use quest_graph::{Graph, NodeId};
use relstore::{AttrId, Catalog, ForeignKey, TableId};

use crate::wrapper::SourceWrapper;

/// Why an edge exists in the schema graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemaEdgeKind {
    /// Primary key ↔ sibling attribute of the same table.
    IntraTable(TableId),
    /// Primary key ↔ foreign key across tables.
    ForeignKey(ForeignKey),
}

/// Edge-weight parameters.
#[derive(Debug, Clone)]
pub struct SchemaGraphWeights {
    /// Weight of intra-table (PK ↔ attribute) edges.
    pub intra_table: f64,
    /// Base weight of PK ↔ FK edges.
    pub fk_base: f64,
    /// Extra distance added to an FK edge scaled by `1 - NMI`: uninformative
    /// (likely-empty) joins become long.
    pub mi_penalty: f64,
    /// NMI assumed when instance statistics are unavailable (hidden source).
    pub default_nmi: f64,
}

impl Default for SchemaGraphWeights {
    fn default() -> Self {
        SchemaGraphWeights {
            intra_table: 1.0,
            fk_base: 1.0,
            mi_penalty: 2.0,
            default_nmi: 0.5,
        }
    }
}

/// The attribute-level schema graph.
#[derive(Debug, Clone)]
pub struct SchemaGraph {
    graph: Graph,
    kinds: HashMap<(NodeId, NodeId), SchemaEdgeKind>,
}

impl SchemaGraph {
    /// Build the graph from a wrapper's catalog, weighting FK edges with the
    /// wrapper's join statistics when available.
    pub fn build<W: SourceWrapper + ?Sized>(
        wrapper: &W,
        weights: &SchemaGraphWeights,
    ) -> SchemaGraph {
        let catalog = wrapper.catalog();
        let mut graph = Graph::with_nodes(catalog.attribute_count());
        let mut kinds = HashMap::new();

        for table in catalog.tables() {
            let hub = hub_attr(catalog, table.id);
            for &attr in &table.attributes {
                if attr == hub {
                    continue;
                }
                let a = node(hub);
                let b = node(attr);
                graph
                    .add_edge(a, b, weights.intra_table)
                    .expect("catalog attribute ids are valid graph nodes");
                kinds.insert(key(a, b), SchemaEdgeKind::IntraTable(table.id));
            }
        }
        for fk in catalog.foreign_keys() {
            let nmi = wrapper
                .join_informativeness(*fk)
                .unwrap_or(weights.default_nmi)
                .clamp(0.0, 1.0);
            let w = weights.fk_base + weights.mi_penalty * (1.0 - nmi);
            let a = node(fk.from);
            let b = node(fk.to);
            graph
                .add_edge(a, b, w)
                .expect("catalog attribute ids are valid graph nodes");
            kinds.insert(key(a, b), SchemaEdgeKind::ForeignKey(*fk));
        }
        SchemaGraph { graph, kinds }
    }

    /// Build with uniform FK weights — the E8 ablation: mutual information
    /// is ignored by zeroing its penalty, so every FK edge costs `fk_base`.
    pub fn build_uniform<W: SourceWrapper + ?Sized>(wrapper: &W) -> SchemaGraph {
        let weights = SchemaGraphWeights {
            mi_penalty: 0.0,
            ..Default::default()
        };
        SchemaGraph::build(wrapper, &weights)
    }

    /// The underlying weighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Graph node of an attribute.
    pub fn node_of(&self, attr: AttrId) -> NodeId {
        node(attr)
    }

    /// Attribute of a graph node.
    pub fn attr_of(&self, n: NodeId) -> AttrId {
        AttrId(n.0)
    }

    /// Kind of an edge, by endpoints (order-insensitive).
    pub fn edge_kind(&self, a: NodeId, b: NodeId) -> Option<SchemaEdgeKind> {
        self.kinds.get(&key(a, b)).copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

/// The hub attribute of a table: its single-attribute primary key, or the
/// first key attribute for composite keys.
pub fn hub_attr(catalog: &Catalog, table: TableId) -> AttrId {
    catalog
        .single_pk(table)
        .unwrap_or_else(|| catalog.table(table).primary_key[0])
}

fn node(attr: AttrId) -> NodeId {
    NodeId(attr.0)
}

fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::FullAccessWrapper;
    use relstore::{DataType, Database, Row};

    fn wrapper() -> FullAccessWrapper {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Fleming".into()]))
            .unwrap();
        d.insert("movie", Row::new(vec![10.into(), "Wind".into(), 1.into()]))
            .unwrap();
        d.finalize();
        FullAccessWrapper::new(d)
    }

    #[test]
    fn structure_matches_paper() {
        let w = wrapper();
        let g = SchemaGraph::build(&w, &SchemaGraphWeights::default());
        // 5 attributes -> 5 nodes.
        assert_eq!(g.node_count(), 5);
        // person: id-name; movie: id-title, id-director_id; fk: director_id-person.id
        assert_eq!(g.edge_count(), 4);
        let c = w.catalog();
        let pid = g.node_of(c.attr_id("person", "id").unwrap());
        let dir = g.node_of(c.attr_id("movie", "director_id").unwrap());
        assert!(matches!(
            g.edge_kind(pid, dir),
            Some(SchemaEdgeKind::ForeignKey(_))
        ));
        let mid = g.node_of(c.attr_id("movie", "id").unwrap());
        let title = g.node_of(c.attr_id("movie", "title").unwrap());
        assert!(matches!(
            g.edge_kind(mid, title),
            Some(SchemaEdgeKind::IntraTable(_))
        ));
        assert_eq!(g.edge_kind(pid, title), None);
    }

    #[test]
    fn fk_weight_reflects_mutual_information() {
        let w = wrapper();
        let weights = SchemaGraphWeights::default();
        let g = SchemaGraph::build(&w, &weights);
        let c = w.catalog();
        let pid = g.node_of(c.attr_id("person", "id").unwrap());
        let dir = g.node_of(c.attr_id("movie", "director_id").unwrap());
        // Single row referencing the single person: nmi = 0 (one referenced
        // key) -> full penalty... referenced_rows == 1 so hmax = 0 -> nmi 0.
        let e = g
            .graph()
            .edges()
            .iter()
            .find(|e| key(e.a, e.b) == key(pid, dir))
            .unwrap();
        assert!((e.weight - (weights.fk_base + weights.mi_penalty)).abs() < 1e-9);
    }

    #[test]
    fn uniform_build_flattens_fk_weights() {
        let w = wrapper();
        let g = SchemaGraph::build_uniform(&w);
        for e in g.graph().edges() {
            assert!((e.weight - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn attr_node_round_trip() {
        let w = wrapper();
        let g = SchemaGraph::build(&w, &SchemaGraphWeights::default());
        let c = w.catalog();
        let a = c.attr_id("movie", "title").unwrap();
        assert_eq!(g.attr_of(g.node_of(a)), a);
    }
}
