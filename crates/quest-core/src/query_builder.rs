//! Query builder: explanation → executable SQL.
//!
//! The final step of Algorithm 1 (`QueryBuilder(E)`): a configuration fixes
//! which attributes carry which keywords, an interpretation fixes the join
//! path, and together they determine a SELECT-PROJECT-JOIN statement.

use relstore::sql::{JoinCondition, Predicate, Projection, SelectStatement};
use relstore::{AttrId, Catalog, TableId};

use crate::backward::{Interpretation, SchemaGraph};
use crate::error::QuestError;
use crate::forward::Configuration;
use crate::keyword::KeywordQuery;
use crate::term::DbTerm;

/// Build the SQL statement of one explanation.
///
/// * FROM — the tables traversed by the interpretation's join path (plus any
///   configuration table not on the path, connected or not);
/// * JOIN — the interpretation's foreign-key edges;
/// * WHERE — a `Contains` predicate per keyword mapped to a *domain* term;
/// * SELECT — the attributes named by attribute terms, the domain-mapped
///   attributes, and all attributes of tables named by table terms.
pub fn build_query(
    catalog: &Catalog,
    schema: &SchemaGraph,
    query: &KeywordQuery,
    config: &Configuration,
    interpretation: &Interpretation,
    limit: Option<usize>,
) -> Result<SelectStatement, QuestError> {
    if config.terms.len() != query.len() {
        return Err(QuestError::BadParameter(format!(
            "configuration arity {} does not match query arity {}",
            config.terms.len(),
            query.len()
        )));
    }

    // FROM: tables on the join path ∪ tables of the configuration.
    let mut from: Vec<TableId> = interpretation.tables(schema, catalog);
    for t in config.tables(catalog) {
        if !from.contains(&t) {
            from.push(t);
        }
    }
    if from.is_empty() {
        return Err(QuestError::NoConfiguration);
    }

    let joins: Vec<JoinCondition> = interpretation.join_conditions(schema);

    // WHERE: keyword containment for domain terms.
    let mut predicates: Vec<Predicate> = Vec::new();
    for (kw, term) in query.keywords.iter().zip(&config.terms) {
        if let DbTerm::Domain(a) = term {
            predicates.push(Predicate::Contains {
                attr: *a,
                keyword: kw.normalized.clone(),
            });
        }
    }

    // SELECT list.
    let mut attrs: Vec<AttrId> = Vec::new();
    let push = |a: AttrId, attrs: &mut Vec<AttrId>| {
        if !attrs.contains(&a) {
            attrs.push(a);
        }
    };
    for term in &config.terms {
        match term {
            DbTerm::Attribute(a) | DbTerm::Domain(a) => push(*a, &mut attrs),
            DbTerm::Table(t) => {
                for a in &catalog.table(*t).attributes {
                    push(*a, &mut attrs);
                }
            }
        }
    }
    let projection = if attrs.is_empty() {
        Projection::Star
    } else {
        Projection::Attrs(attrs)
    };

    Ok(SelectStatement {
        projection,
        from,
        joins,
        predicates,
        distinct: true,
        limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::{BackwardModule, SchemaGraphWeights};
    use crate::wrapper::{FullAccessWrapper, SourceWrapper};
    use relstore::sql::render_sql;
    use relstore::{DataType, Database, Row};

    fn setup() -> (FullAccessWrapper, BackwardModule) {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![10.into(), "Gone with the Wind".into(), 1.into()]),
        )
        .unwrap();
        d.finalize();
        let w = FullAccessWrapper::new(d);
        let b = BackwardModule::new(&w, &SchemaGraphWeights::default());
        (w, b)
    }

    #[test]
    fn cross_table_query_builds_join_sql() {
        let (w, b) = setup();
        let c = w.catalog();
        let q = KeywordQuery::parse("wind fleming").unwrap();
        let title = c.attr_id("movie", "title").unwrap();
        let name = c.attr_id("person", "name").unwrap();
        let cfg = Configuration::new(vec![DbTerm::Domain(title), DbTerm::Domain(name)], 1.0);
        let interp = b.interpretations(c, &cfg, 1).unwrap().remove(0);
        let stmt = build_query(c, b.schema_graph(), &q, &cfg, &interp, Some(10)).unwrap();
        let sql = render_sql(c, &stmt);
        assert!(sql.contains("movie.director_id = person.id"), "{sql}");
        assert!(sql.contains("movie.title LIKE '%wind%'"), "{sql}");
        // "fleming" stems to "flem"; the LIKE pattern carries the stemmed
        // token and still substring-matches the stored value.
        assert!(sql.contains("person.name LIKE '%flem%'"), "{sql}");
        assert!(sql.contains("LIMIT 10"), "{sql}");
        // Statement actually executes and returns the matching pair.
        let rs = w.execute(&stmt).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn table_term_projects_whole_table() {
        let (w, b) = setup();
        let c = w.catalog();
        let q = KeywordQuery::parse("film wind").unwrap();
        let movie = c.table_id("movie").unwrap();
        let title = c.attr_id("movie", "title").unwrap();
        let cfg = Configuration::new(vec![DbTerm::Table(movie), DbTerm::Domain(title)], 1.0);
        let interp = b.interpretations(c, &cfg, 1).unwrap().remove(0);
        let stmt = build_query(c, b.schema_graph(), &q, &cfg, &interp, None).unwrap();
        match &stmt.projection {
            Projection::Attrs(attrs) => assert_eq!(attrs.len(), 3), // movie has 3 attrs
            _ => panic!("expected attribute projection"),
        }
        // The table keyword adds no WHERE predicate.
        assert_eq!(stmt.predicates.len(), 1);
        let rs = w.execute(&stmt).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn attribute_term_projects_without_filter() {
        let (w, b) = setup();
        let c = w.catalog();
        let q = KeywordQuery::parse("title wind").unwrap();
        let title = c.attr_id("movie", "title").unwrap();
        let cfg = Configuration::new(vec![DbTerm::Attribute(title), DbTerm::Domain(title)], 1.0);
        let interp = b.interpretations(c, &cfg, 1).unwrap().remove(0);
        let stmt = build_query(c, b.schema_graph(), &q, &cfg, &interp, None).unwrap();
        assert_eq!(stmt.predicates.len(), 1);
        assert_eq!(stmt.from.len(), 1);
        assert!(stmt.joins.is_empty());
        let _ = w;
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (w, b) = setup();
        let c = w.catalog();
        let q = KeywordQuery::parse("wind fleming").unwrap();
        let title = c.attr_id("movie", "title").unwrap();
        let cfg = Configuration::new(vec![DbTerm::Domain(title)], 1.0);
        let interp = b.interpretations(c, &cfg, 1).unwrap().remove(0);
        assert!(build_query(c, b.schema_graph(), &q, &cfg, &interp, None).is_err());
    }
}
