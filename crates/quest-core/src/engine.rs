//! The QUEST engine: Algorithm 1 end to end.
//!
//! ```text
//! Cap ← HMM_a_priori(q, k)  |  Cf ← HMM_feedback(q, k)
//! C   ← CombinerDST(Cap, Cf, O_Cap, O_Cf)
//! I   ← ST(q, C, k)
//! E   ← CombinerDST(C, I, O_C, O_I)
//! E   ← QueryBuilder(E)
//! ```

use std::time::{Duration, Instant};

use relstore::sql::ResultSet;
use relstore::StoreError;

use crate::backward::{BackwardModule, Interpretation, SchemaGraphWeights};
use crate::combiner::{combine_explanation_scores, combine_ranked};
use crate::error::QuestError;
use crate::explain::Explanation;
use crate::forward::{Configuration, ForwardModule};
use crate::keyword::KeywordQuery;
use crate::query_builder::build_query;
use crate::scratch::SearchScratch;
use crate::semantics::SemanticRules;
use crate::term::DbTerm;
use crate::wrapper::SourceWrapper;

/// Engine parameters: the `k` and the four uncertainty degrees of
/// Algorithm 1, plus tuning knobs.
#[derive(Debug, Clone)]
pub struct QuestConfig {
    /// Results kept at every stage (top-k configurations, interpretations
    /// per configuration, and final explanations).
    pub k: usize,
    /// Uncertainty of the a-priori operating mode (`O_Cap`).
    pub o_cap: f64,
    /// Floor uncertainty of the feedback operating mode (`O_Cf`); see
    /// `adaptive_feedback`.
    pub o_cf: f64,
    /// Uncertainty of the (combined) forward approach (`O_C`).
    pub o_c: f64,
    /// Uncertainty of the backward approach (`O_I`).
    pub o_i: f64,
    /// When true, the effective `O_Cf` starts at 1 (vacuous) with no
    /// feedback and decays toward the configured floor as validated searches
    /// accumulate — the paper's adaptation story (§3).
    pub adaptive_feedback: bool,
    /// A-priori transition heuristics.
    pub rules: SemanticRules,
    /// Schema-graph edge weights.
    pub weights: SchemaGraphWeights,
    /// LIMIT applied to generated SQL.
    pub result_limit: Option<usize>,
    /// Drop explanations whose SQL returns no tuples (requires an endpoint
    /// probe per explanation).
    pub prune_empty: bool,
    /// Physical partitions the engine's source is split across. 1 (the
    /// default) for an unsharded store; a sharded deployment (the
    /// `quest-shard` crate) sets it to its shard count. Valid range:
    /// `1..=1024` — 0 is rejected by [`QuestConfig::validate`], because a
    /// zero-shard store would silently answer every query from no data.
    pub shard_count: usize,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            k: 5,
            o_cap: 0.3,
            o_cf: 0.2,
            o_c: 0.3,
            o_i: 0.3,
            adaptive_feedback: true,
            rules: SemanticRules::default(),
            weights: SchemaGraphWeights::default(),
            result_limit: Some(100),
            prune_empty: false,
            shard_count: 1,
        }
    }
}

impl QuestConfig {
    /// Validate all uncertainty degrees and k.
    pub fn validate(&self) -> Result<(), QuestError> {
        for (name, v) in [
            ("O_Cap", self.o_cap),
            ("O_Cf", self.o_cf),
            ("O_C", self.o_c),
            ("O_I", self.o_i),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(QuestError::BadParameter(format!(
                    "{name} = {v} outside [0, 1]"
                )));
            }
        }
        if self.k == 0 {
            return Err(QuestError::BadParameter("k must be positive".into()));
        }
        if self.result_limit == Some(0) {
            return Err(QuestError::BadParameter(
                "result_limit = Some(0) silently yields empty result sets; \
                 use None for no limit"
                    .into(),
            ));
        }
        if self.shard_count == 0 {
            return Err(QuestError::BadParameter(
                "shard_count = 0 would serve every query from no data; \
                 valid range is 1..=1024 (1 = unsharded)"
                    .into(),
            ));
        }
        if self.shard_count > 1024 {
            return Err(QuestError::BadParameter(format!(
                "shard_count = {} above the supported maximum of 1024",
                self.shard_count
            )));
        }
        Ok(())
    }
}

/// Wall-clock cost of each pipeline stage of one search.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// Emission computation (index probes / metadata matching).
    pub emissions: Duration,
    /// A-priori list Viterbi.
    pub forward_apriori: Duration,
    /// Feedback list Viterbi.
    pub forward_feedback: Duration,
    /// First DST combination (configurations).
    pub combine_configs: Duration,
    /// Steiner tree enumeration.
    pub backward: Duration,
    /// Second DST combination + query building.
    pub combine_explanations: Duration,
}

impl StageTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.emissions
            + self.forward_apriori
            + self.forward_feedback
            + self.combine_configs
            + self.backward
            + self.combine_explanations
    }
}

/// Output of the forward stage of Algorithm 1: the two operating modes'
/// ranked configuration lists and their DST combination, plus the timings of
/// the stages that produced them.
///
/// Produced by [`Quest::forward_pass`]; a serving layer can cache it keyed
/// on the query keywords and the engine's
/// [feedback epoch](Quest::feedback_epoch) and later replay it through
/// [`Quest::assemble`] for results identical to an uncached
/// [`Quest::search_query`].
#[derive(Debug, Clone)]
pub struct ForwardResult {
    /// A-priori configurations (partial result).
    pub apriori: Vec<Configuration>,
    /// Feedback configurations (partial result; empty before training).
    pub feedback: Vec<Configuration>,
    /// DST-combined configurations, best first, truncated to `k`.
    pub configurations: Vec<Configuration>,
    /// Effective `O_Cf` used for the combination (after adaptation).
    pub effective_o_cf: f64,
    /// Timings of the forward stages (emissions, both decodes, first
    /// combination); the backward/assembly fields are zero.
    pub timings: StageTimings,
}

/// Everything one search produced, including the per-module partial results
/// the demo compares (§4, message 2).
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The parsed query.
    pub query: KeywordQuery,
    /// A-priori configurations (partial result).
    pub apriori_configs: Vec<Configuration>,
    /// Feedback configurations (partial result; empty before training).
    pub feedback_configs: Vec<Configuration>,
    /// DST-combined configurations.
    pub configurations: Vec<Configuration>,
    /// Ranked explanations (the answer).
    pub explanations: Vec<Explanation>,
    /// Per-stage timings.
    pub timings: StageTimings,
    /// Effective `O_Cf` used (after adaptation).
    pub effective_o_cf: f64,
}

/// The QUEST search engine over one wrapped source.
#[derive(Debug, Clone)]
pub struct Quest<W: SourceWrapper> {
    wrapper: W,
    forward: ForwardModule,
    backward: BackwardModule,
    config: QuestConfig,
}

impl<W: SourceWrapper> Quest<W> {
    /// Build the engine: extracts the vocabulary, builds the a-priori HMM
    /// and the schema graph (the paper's setup phase).
    pub fn new(wrapper: W, config: QuestConfig) -> Result<Quest<W>, QuestError> {
        config.validate()?;
        let forward = ForwardModule::new(&wrapper, &config.rules)?;
        let backward = BackwardModule::new(&wrapper, &config.weights);
        Ok(Quest {
            wrapper,
            forward,
            backward,
            config,
        })
    }

    /// The wrapped source.
    pub fn wrapper(&self) -> &W {
        &self.wrapper
    }

    /// Build a fresh engine over another wrapped source with **this**
    /// engine's configuration.
    ///
    /// This is how a replica constructs its engine from a shipped snapshot
    /// (see the `quest-replica` crate): deriving the configuration from the
    /// primary instead of passing one separately means the two engines'
    /// parameters — and therefore their results over identical data —
    /// cannot drift apart. The new engine starts with no feedback state, so
    /// it matches a cold engine over the same data bit for bit.
    pub fn sibling<V: SourceWrapper>(&self, wrapper: V) -> Result<Quest<V>, QuestError> {
        Quest::new(wrapper, self.config.clone())
    }

    /// The forward module.
    pub fn forward(&self) -> &ForwardModule {
        &self.forward
    }

    /// The backward module.
    pub fn backward(&self) -> &BackwardModule {
        &self.backward
    }

    /// Engine parameters.
    pub fn config(&self) -> &QuestConfig {
        &self.config
    }

    /// Mutable engine parameters (e.g. to sweep uncertainty degrees).
    pub fn config_mut(&mut self) -> &mut QuestConfig {
        &mut self.config
    }

    /// Effective feedback uncertainty: vacuous at zero feedback, decaying
    /// toward the configured floor as validated searches accumulate.
    pub fn effective_o_cf(&self) -> f64 {
        if !self.config.adaptive_feedback {
            return self.config.o_cf;
        }
        let n = self.forward.feedback_count() as f64;
        let floor = self.config.o_cf;
        floor + (1.0 - floor) * (-n / 10.0).exp()
    }

    /// Run Algorithm 1 on a raw query string.
    pub fn search(&self, raw_query: &str) -> Result<SearchOutcome, QuestError> {
        let query = KeywordQuery::parse(raw_query)?;
        self.search_query(&query)
    }

    /// Run Algorithm 1 on a parsed query.
    ///
    /// Equivalent to [`Quest::forward_pass`], one [`Quest::backward_pass`]
    /// per combined configuration, and [`Quest::assemble`]; a serving layer
    /// that caches the stage results and replays them through `assemble`
    /// produces identical outcomes.
    ///
    /// Allocates a throwaway [`SearchScratch`]; callers issuing many
    /// searches should hold one and use [`Quest::search_query_with`].
    pub fn search_query(&self, query: &KeywordQuery) -> Result<SearchOutcome, QuestError> {
        self.search_query_with(query, &mut SearchScratch::new())
    }

    /// [`Quest::search_query`] through a caller-owned [`SearchScratch`]:
    /// the allocation-lean hot path (prepared keywords, reused emission
    /// matrix and decoder lattice, pruned decoding, per-query Steiner
    /// memo). Bit-identical to the scratch-free and reference paths
    /// (`tests/perf_identity.rs`).
    pub fn search_query_with(
        &self,
        query: &KeywordQuery,
        scratch: &mut SearchScratch,
    ) -> Result<SearchOutcome, QuestError> {
        scratch.reset_query_state();
        let forward = self.forward_pass_with(query, scratch)?;
        let t0 = Instant::now();
        let mut interpretations = Vec::with_capacity(forward.configurations.len());
        for cfg in &forward.configurations {
            interpretations.push(self.backward_pass_with(cfg, scratch)?);
        }
        let backward = t0.elapsed();
        self.assemble_with(query, forward, interpretations, backward, scratch)
    }

    /// Run Algorithm 1 through the retained **reference** implementations
    /// of every optimized stage: per-probe keyword normalization and
    /// posting-list scans for emissions, freshly allocated unpruned list
    /// Viterbi for both decodes, unmemoized unpruned Steiner enumeration,
    /// and freshly allocated assembly buffers.
    ///
    /// This is the pre-optimization pipeline, kept callable as the anchor
    /// of the bit-identity suite and the baseline of the committed
    /// pipeline benchmark (`BENCH_pipeline.json`).
    pub fn search_query_reference(
        &self,
        query: &KeywordQuery,
    ) -> Result<SearchOutcome, QuestError> {
        let forward = self.forward_pass_reference(query)?;
        let t0 = Instant::now();
        let mut interpretations = Vec::with_capacity(forward.configurations.len());
        for cfg in &forward.configurations {
            interpretations.push(self.backward_pass(cfg)?);
        }
        let backward = t0.elapsed();
        self.assemble_reference(query, forward, interpretations, backward)
    }

    /// Forward stage of Algorithm 1: emissions, both operating-mode decodes,
    /// and the first DST combination (`C ← CombinerDST(Cap, Cf, O_Cap,
    /// O_Cf)`).
    ///
    /// The result depends only on the query's normalized keywords and the
    /// current [feedback epoch](Quest::feedback_epoch), which makes it
    /// cacheable on that pair.
    pub fn forward_pass(&self, query: &KeywordQuery) -> Result<ForwardResult, QuestError> {
        self.forward_pass_with(query, &mut SearchScratch::new())
    }

    /// [`Quest::forward_pass`] through a caller-owned scratch: the emission
    /// matrix is computed **once** into the scratch's reused buffer via
    /// prepared keywords and shared by both operating-mode decodes, which
    /// run on the scratch's pruned [`quest_hmm::ListDecoder`].
    pub fn forward_pass_with(
        &self,
        query: &KeywordQuery,
        scratch: &mut SearchScratch,
    ) -> Result<ForwardResult, QuestError> {
        let k = self.config.k;
        let mut timings = StageTimings::default();

        // Emissions (computed once, shared by both operating modes).
        let t0 = Instant::now();
        let SearchScratch {
            decoder,
            emissions,
            prepared,
            ..
        } = scratch;
        self.forward
            .emissions_into(&self.wrapper, query, prepared, emissions);
        timings.emissions = t0.elapsed();

        // Forward, both modes, on the shared scratch decoder.
        let t0 = Instant::now();
        let apriori = self.forward.top_k_apriori_with(decoder, emissions, k)?;
        timings.forward_apriori = t0.elapsed();
        let t0 = Instant::now();
        let feedback = self.forward.top_k_feedback_with(decoder, emissions, k)?;
        timings.forward_feedback = t0.elapsed();

        self.combine_forward(apriori, feedback, timings)
    }

    /// [`Quest::forward_pass`] through the reference (pre-optimization)
    /// emission scoring and decoders; see
    /// [`Quest::search_query_reference`].
    pub fn forward_pass_reference(
        &self,
        query: &KeywordQuery,
    ) -> Result<ForwardResult, QuestError> {
        let k = self.config.k;
        let mut timings = StageTimings::default();

        let t0 = Instant::now();
        let emissions = self.forward.emissions_reference(&self.wrapper, query);
        timings.emissions = t0.elapsed();

        let t0 = Instant::now();
        let apriori = self.forward.top_k_apriori(&emissions, k)?;
        timings.forward_apriori = t0.elapsed();
        let t0 = Instant::now();
        let feedback = self.forward.top_k_feedback(&emissions, k)?;
        timings.forward_feedback = t0.elapsed();

        self.combine_forward(apriori, feedback, timings)
    }

    /// The first DST combination, shared by every forward-pass variant so
    /// the combination logic cannot drift between them.
    fn combine_forward(
        &self,
        apriori: Vec<Configuration>,
        feedback: Vec<Configuration>,
        mut timings: StageTimings,
    ) -> Result<ForwardResult, QuestError> {
        if apriori.is_empty() && feedback.is_empty() {
            return Err(QuestError::NoConfiguration);
        }

        // First combination: C ← CombinerDST(Cap, Cf, O_Cap, O_Cf).
        let t0 = Instant::now();
        let k = self.config.k;
        let o_cf = self.effective_o_cf();
        let l1: Vec<(Vec<DbTerm>, f64)> =
            apriori.iter().map(|c| (c.terms.clone(), c.score)).collect();
        let l2: Vec<(Vec<DbTerm>, f64)> = feedback
            .iter()
            .map(|c| (c.terms.clone(), c.score))
            .collect();
        let combined = combine_ranked(&l1, self.config.o_cap, &l2, o_cf)?;
        let configurations: Vec<Configuration> = combined
            .into_iter()
            .take(k)
            .map(|(terms, score)| Configuration::new(terms, score))
            .collect();
        timings.combine_configs = t0.elapsed();

        Ok(ForwardResult {
            apriori,
            feedback,
            configurations,
            effective_o_cf: o_cf,
            timings,
        })
    }

    /// Backward stage for one configuration: its top-k interpretations
    /// (`I ← ST(q, C, k)`), using the engine's configured `k`.
    ///
    /// Depends only on the configuration's term sequence (and the immutable
    /// schema graph), which makes it cacheable on `config.terms`.
    pub fn backward_pass(&self, config: &Configuration) -> Result<Vec<Interpretation>, QuestError> {
        self.backward
            .interpretations(self.wrapper.catalog(), config, self.config.k)
    }

    /// [`Quest::backward_pass`] through two memo layers and the pruned
    /// enumeration — the backward hot path, bit-identical to the reference:
    ///
    /// 1. the scratch's **per-query memo** (distinct configurations of one
    ///    query frequently anchor to the same Steiner terminal set);
    /// 2. the engine's **join-template memo**, keyed by schema shape
    ///    `(terminals, k)` and shared across queries and threads (rebuilt
    ///    from empty whenever [`Quest::resync`] rebuilds the backward
    ///    module);
    /// 3. on a cold miss, the scratch-reused pruned Steiner enumeration
    ///    (`quest_graph::top_k_steiner_with`).
    pub fn backward_pass_with(
        &self,
        config: &Configuration,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<Interpretation>, QuestError> {
        let terminals = self.backward.terminals(self.wrapper.catalog(), config);
        if let Some(hit) = scratch.memoized_interpretations(&terminals) {
            return Ok(hit.clone());
        }
        let interps = self.backward.interpretations_for_terminals_cached(
            &terminals,
            self.config.k,
            &mut scratch.steiner,
        )?;
        scratch.steiner_memo.push((terminals, interps.clone()));
        Ok(interps)
    }

    /// Final stage of Algorithm 1: the second DST combination, query
    /// building, ranking, and optional empty-result pruning.
    ///
    /// `interpretations` holds one interpretation list per entry of
    /// `forward.configurations`, as produced by [`Quest::backward_pass`];
    /// `backward_time` is charged to the backward stage in the outcome's
    /// timings (pass [`Duration::ZERO`] when replaying cached results).
    ///
    /// Allocates a throwaway [`SearchScratch`]; callers issuing many
    /// searches should hold one and use [`Quest::assemble_with`].
    pub fn assemble(
        &self,
        query: &KeywordQuery,
        forward: ForwardResult,
        interpretations: Vec<Vec<Interpretation>>,
        backward_time: Duration,
    ) -> Result<SearchOutcome, QuestError> {
        self.assemble_with(
            query,
            forward,
            interpretations,
            backward_time,
            &mut SearchScratch::new(),
        )
    }

    /// [`Quest::assemble`] through a caller-owned scratch: the flattened
    /// `(configuration, interpretation)` pairs and both score lists are
    /// built in the scratch's reused buffers instead of three fresh
    /// vectors per search. Bit-identical to [`Quest::assemble_reference`]
    /// (`tests/perf_identity.rs`).
    pub fn assemble_with(
        &self,
        query: &KeywordQuery,
        forward: ForwardResult,
        interpretations: Vec<Vec<Interpretation>>,
        backward_time: Duration,
        scratch: &mut SearchScratch,
    ) -> Result<SearchOutcome, QuestError> {
        let ForwardResult {
            apriori,
            feedback,
            mut configurations,
            effective_o_cf,
            mut timings,
        } = forward;
        if interpretations.len() != configurations.len() {
            return Err(QuestError::BadParameter(format!(
                "assemble: {} interpretation lists for {} configurations",
                interpretations.len(),
                configurations.len()
            )));
        }
        timings.backward = backward_time;
        let k = self.config.k;
        let catalog = self.wrapper.catalog();
        scratch.assemble_pairs.clear();
        for (ci, interps) in interpretations.into_iter().enumerate() {
            for i in interps {
                scratch.assemble_pairs.push((ci, i));
            }
        }

        // Second combination + query building.
        let t0 = Instant::now();
        scratch.config_scores.clear();
        scratch
            .config_scores
            .extend(configurations.iter().map(|c| c.score));
        scratch.pair_scores.clear();
        scratch
            .pair_scores
            .extend(scratch.assemble_pairs.iter().map(|(ci, i)| (*ci, i.score)));
        let scores = combine_explanation_scores(
            &scratch.config_scores,
            &scratch.pair_scores,
            self.config.o_c,
            self.config.o_i,
        )?;
        let mut explanations: Vec<Explanation> = Vec::with_capacity(scratch.assemble_pairs.len());
        for ((ci, interp), score) in scratch.assemble_pairs.drain(..).zip(scores) {
            let cfg = &configurations[ci];
            let stmt = build_query(
                catalog,
                self.backward.schema_graph(),
                query,
                cfg,
                &interp,
                self.config.result_limit,
            )?;
            explanations.push(Explanation {
                configuration: cfg.clone(),
                interpretation: interp,
                statement: stmt,
                score,
            });
        }
        explanations.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if self.config.prune_empty {
            explanations.retain(|e| self.wrapper.has_results(&e.statement).unwrap_or(true));
        }
        explanations.truncate(k);
        timings.combine_explanations = t0.elapsed();

        // Keep partial configuration lists sorted for the demo comparisons.
        configurations.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        Ok(SearchOutcome {
            query: query.clone(),
            apriori_configs: apriori,
            feedback_configs: feedback,
            configurations,
            explanations,
            timings,
            effective_o_cf,
        })
    }

    /// The retained **reference** assembly: identical logic to
    /// [`Quest::assemble_with`] built with freshly allocated buffers, kept
    /// callable as the anchor of the bit-identity suite (exactly like the
    /// decode and Steiner reference twins).
    pub fn assemble_reference(
        &self,
        query: &KeywordQuery,
        forward: ForwardResult,
        interpretations: Vec<Vec<Interpretation>>,
        backward_time: Duration,
    ) -> Result<SearchOutcome, QuestError> {
        let ForwardResult {
            apriori,
            feedback,
            mut configurations,
            effective_o_cf,
            mut timings,
        } = forward;
        if interpretations.len() != configurations.len() {
            return Err(QuestError::BadParameter(format!(
                "assemble: {} interpretation lists for {} configurations",
                interpretations.len(),
                configurations.len()
            )));
        }
        timings.backward = backward_time;
        let k = self.config.k;
        let catalog = self.wrapper.catalog();
        let pairs: Vec<(usize, Interpretation)> = interpretations
            .into_iter()
            .enumerate()
            .flat_map(|(ci, interps)| interps.into_iter().map(move |i| (ci, i)))
            .collect();

        // Second combination + query building.
        let t0 = Instant::now();
        let config_scores: Vec<f64> = configurations.iter().map(|c| c.score).collect();
        let pair_scores: Vec<(usize, f64)> = pairs.iter().map(|(ci, i)| (*ci, i.score)).collect();
        let scores = combine_explanation_scores(
            &config_scores,
            &pair_scores,
            self.config.o_c,
            self.config.o_i,
        )?;
        let mut explanations: Vec<Explanation> = Vec::with_capacity(pairs.len());
        for ((ci, interp), score) in pairs.into_iter().zip(scores) {
            let cfg = &configurations[ci];
            let stmt = build_query(
                catalog,
                self.backward.schema_graph(),
                query,
                cfg,
                &interp,
                self.config.result_limit,
            )?;
            explanations.push(Explanation {
                configuration: cfg.clone(),
                interpretation: interp,
                statement: stmt,
                score,
            });
        }
        explanations.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if self.config.prune_empty {
            explanations.retain(|e| self.wrapper.has_results(&e.statement).unwrap_or(true));
        }
        explanations.truncate(k);
        timings.combine_explanations = t0.elapsed();

        // Keep partial configuration lists sorted for the demo comparisons.
        configurations.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        Ok(SearchOutcome {
            query: query.clone(),
            apriori_configs: apriori,
            feedback_configs: feedback,
            configurations,
            explanations,
            timings,
            effective_o_cf,
        })
    }

    /// Execute an explanation's SQL through the wrapper.
    pub fn execute(&self, explanation: &Explanation) -> Result<ResultSet, StoreError> {
        self.wrapper.execute(&explanation.statement)
    }

    /// Record user feedback on an explanation. Positive feedback validates
    /// its configuration; negative feedback discounts it. Remembers the
    /// query emissions for optional EM refinement.
    ///
    /// Takes `&self`: the feedback state lives behind interior mutability
    /// (see [`ForwardModule`]), so feedback can be recorded on an engine
    /// shared across threads (e.g. through an `Arc`).
    pub fn feedback(
        &self,
        query: &KeywordQuery,
        explanation: &Explanation,
        positive: bool,
    ) -> Result<(), QuestError> {
        let emissions = self.forward.emissions(&self.wrapper, query);
        self.forward.remember_query(emissions);
        self.forward
            .record_feedback(&explanation.configuration, positive)
    }

    /// Directly record a validated configuration (used by training oracles).
    pub fn feedback_configuration(
        &self,
        config: &Configuration,
        positive: bool,
    ) -> Result<(), QuestError> {
        self.forward.record_feedback(config, positive)
    }

    /// Run Baum-Welch refinement over remembered queries.
    pub fn refine_feedback_model(&self, max_iters: usize) -> Result<usize, QuestError> {
        self.forward.refine_with_em(max_iters)
    }

    /// Monotonic feedback version: bumped whenever feedback or EM refinement
    /// changes what a search can return. External caches key on this.
    pub fn feedback_epoch(&self) -> u64 {
        self.forward.feedback_epoch()
    }

    /// Re-run the parts of the setup phase that depend on the *instance*
    /// after the underlying source mutated.
    ///
    /// Emission probabilities always flow live from the wrapper's search
    /// function, so the forward module needs no work for data changes — but
    /// the backward module's schema graph bakes in the per-FK mutual
    /// information at build time, so it is rebuilt here (cheap: its size is
    /// schema-, not instance-bound). If the catalog itself changed (DDL,
    /// out of scope for the mutation API but possible through
    /// [`Quest::mutate_source`]), the vocabulary and a-priori HMM are
    /// rebuilt too, discarding accumulated feedback — terms learned against
    /// the old vocabulary no longer apply.
    pub fn resync(&mut self) -> Result<(), QuestError> {
        if !self.forward.check_catalog(self.wrapper.catalog()) {
            self.forward = ForwardModule::new(&self.wrapper, &self.config.rules)?;
        }
        self.backward = BackwardModule::new(&self.wrapper, &self.config.weights);
        Ok(())
    }

    /// Mutate the wrapped source through `f`, then [`Quest::resync`] so
    /// searches immediately see the new data with consistent join weights.
    /// This is the engine-level hook for one-shot mutations.
    pub fn mutate_source<R>(&mut self, f: impl FnOnce(&mut W) -> R) -> Result<R, QuestError> {
        let result = f(&mut self.wrapper);
        self.resync()?;
        Ok(result)
    }

    /// Raw mutable access to the wrapped source, for callers that want to
    /// decide *whether* to pay for a [`Quest::resync`] afterwards (e.g. a
    /// batch applier that skips the re-sync when every record was
    /// rejected). After any actual mutation, searches are inconsistent
    /// until `resync` runs — prefer [`Quest::mutate_source`] unless you
    /// are managing that explicitly.
    pub fn source_mut(&mut self) -> &mut W {
        &mut self.wrapper
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::FullAccessWrapper;
    use relstore::{Catalog, DataType, Database, Row};

    fn engine() -> Quest<FullAccessWrapper> {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .col_opts("year", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        let mut d = Database::new(c).unwrap();
        d.insert("person", Row::new(vec![1.into(), "Victor Fleming".into()]))
            .unwrap();
        d.insert("person", Row::new(vec![2.into(), "Michael Curtiz".into()]))
            .unwrap();
        d.insert(
            "movie",
            Row::new(vec![
                10.into(),
                "Gone with the Wind".into(),
                1.into(),
                1939.into(),
            ]),
        )
        .unwrap();
        d.insert(
            "movie",
            Row::new(vec![11.into(), "Casablanca".into(), 2.into(), 1942.into()]),
        )
        .unwrap();
        d.finalize();
        Quest::new(FullAccessWrapper::new(d), QuestConfig::default()).unwrap()
    }

    #[test]
    fn end_to_end_single_table() {
        let q = engine();
        let out = q.search("casablanca").unwrap();
        assert!(!out.explanations.is_empty());
        let best = &out.explanations[0];
        let rs = q.execute(best).unwrap();
        assert_eq!(rs.len(), 1);
        assert!(best.sql(q.wrapper().catalog()).contains("casablanca"));
    }

    #[test]
    fn end_to_end_join_query() {
        let q = engine();
        let out = q.search("wind fleming").unwrap();
        let best = &out.explanations[0];
        let sql = best.sql(q.wrapper().catalog());
        assert!(sql.contains("movie.director_id = person.id"), "{sql}");
        let rs = q.execute(best).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn partial_results_are_exposed() {
        let q = engine();
        let out = q.search("casablanca director").unwrap();
        assert!(!out.apriori_configs.is_empty());
        assert!(out.feedback_configs.is_empty()); // no training yet
        assert!(!out.configurations.is_empty());
        assert!(out.timings.total() > Duration::ZERO);
    }

    #[test]
    fn adaptive_o_cf_decays_with_feedback() {
        let mut q = engine();
        assert!(
            (q.effective_o_cf() - 1.0).abs() < 1e-9,
            "vacuous before feedback"
        );
        let query = KeywordQuery::parse("casablanca").unwrap();
        let out = q.search_query(&query).unwrap();
        let best = out.explanations[0].clone();
        for _ in 0..20 {
            q.feedback(&query, &best, true).unwrap();
        }
        let o = q.effective_o_cf();
        assert!(o < 0.4, "o_cf should approach the floor, got {o}");
        // With adaptation off, the raw floor applies.
        q.config_mut().adaptive_feedback = false;
        assert_eq!(q.effective_o_cf(), 0.2);
    }

    #[test]
    fn feedback_changes_final_ranking() {
        let q = engine();
        let query = KeywordQuery::parse("fleming 1939").unwrap();
        let before = q.search_query(&query).unwrap();
        // Validate the best explanation repeatedly; the combined list must
        // eventually contain its configuration at rank 1 by feedback alone.
        let target = before.explanations[0].configuration.clone();
        for _ in 0..10 {
            q.feedback_configuration(&target, true).unwrap();
        }
        let after = q.search_query(&query).unwrap();
        assert!(!after.feedback_configs.is_empty());
        assert_eq!(after.feedback_configs[0].terms, target.terms);
    }

    #[test]
    fn prune_empty_filters_resultless_sql() {
        let mut q = engine();
        q.config_mut().prune_empty = true;
        let out = q.search("casablanca fleming").unwrap();
        // Casablanca was directed by Curtiz, not Fleming: the join
        // explanation is empty and must be pruned; whatever remains returns
        // rows or nothing survives.
        for e in &out.explanations {
            assert!(q.wrapper().has_results(&e.statement).unwrap_or(false));
        }
        use crate::wrapper::SourceWrapper;
    }

    #[test]
    fn config_validation() {
        let bad = QuestConfig {
            o_cap: 1.5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = QuestConfig {
            k: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        assert!(QuestConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_result_limit_rejected() {
        // `LIMIT 0` would make every explanation return an empty result set
        // with no error anywhere downstream — reject it at validation.
        let bad = QuestConfig {
            result_limit: Some(0),
            ..Default::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(matches!(&err, QuestError::BadParameter(m) if m.contains("result_limit")));
        // Quest::new runs validation, so construction fails too.
        let db = {
            let mut c = relstore::Catalog::new();
            c.define_table("t")
                .unwrap()
                .pk("id", DataType::Int)
                .unwrap()
                .finish();
            Database::new(c).unwrap()
        };
        assert!(Quest::new(
            FullAccessWrapper::new(db),
            QuestConfig {
                result_limit: Some(0),
                ..Default::default()
            }
        )
        .is_err());
        // `None` (no LIMIT) and positive limits remain valid.
        assert!(QuestConfig {
            result_limit: None,
            ..Default::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn zero_shard_count_rejected() {
        // A zero-shard store would answer every query from no data with no
        // error anywhere downstream — same failure shape as `LIMIT 0`,
        // rejected at the same gate.
        let bad = QuestConfig {
            shard_count: 0,
            ..Default::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(matches!(&err, QuestError::BadParameter(m) if m.contains("shard_count")));
        // The documented range: 1..=1024.
        for n in [1usize, 2, 16, 1024] {
            assert!(
                QuestConfig {
                    shard_count: n,
                    ..Default::default()
                }
                .validate()
                .is_ok(),
                "shard_count {n} must validate"
            );
        }
        assert!(QuestConfig {
            shard_count: 1025,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn stage_api_matches_search_query() {
        // forward_pass + backward_pass + assemble is exactly search_query.
        let q = engine();
        let query = KeywordQuery::parse("wind fleming").unwrap();
        let whole = q.search_query(&query).unwrap();
        let fwd = q.forward_pass(&query).unwrap();
        let interps: Vec<_> = fwd
            .configurations
            .iter()
            .map(|c| q.backward_pass(c).unwrap())
            .collect();
        let staged = q.assemble(&query, fwd, interps, Duration::ZERO).unwrap();
        assert_eq!(staged.explanations.len(), whole.explanations.len());
        for (a, b) in staged.explanations.iter().zip(&whole.explanations) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.configuration.terms, b.configuration.terms);
            assert_eq!(a.statement, b.statement);
        }
        let terms = |cs: &[Configuration]| cs.iter().map(|c| c.terms.clone()).collect::<Vec<_>>();
        assert_eq!(terms(&staged.configurations), terms(&whole.configurations));
    }

    #[test]
    fn scratch_and_reference_paths_match_bitwise() {
        let q = engine();
        let mut scratch = SearchScratch::new();
        for raw in ["casablanca", "wind fleming", "casablanca director 1942"] {
            let query = KeywordQuery::parse(raw).unwrap();
            let fast = q.search_query_with(&query, &mut scratch).unwrap();
            let plain = q.search_query(&query).unwrap();
            let reference = q.search_query_reference(&query).unwrap();
            for other in [&plain, &reference] {
                assert_eq!(fast.explanations.len(), other.explanations.len(), "{raw}");
                for (a, b) in fast.explanations.iter().zip(&other.explanations) {
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "{raw}");
                    assert_eq!(a.statement, b.statement, "{raw}");
                    assert_eq!(a.configuration.terms, b.configuration.terms);
                }
                assert_eq!(fast.configurations.len(), other.configurations.len());
            }
        }
    }

    #[test]
    fn assemble_rejects_mismatched_interpretations() {
        let q = engine();
        let query = KeywordQuery::parse("casablanca").unwrap();
        let fwd = q.forward_pass(&query).unwrap();
        assert!(q.assemble(&query, fwd, Vec::new(), Duration::ZERO).is_err());
    }

    #[test]
    fn feedback_epoch_advances() {
        let q = engine();
        assert_eq!(q.feedback_epoch(), 0);
        let query = KeywordQuery::parse("casablanca").unwrap();
        let out = q.search_query(&query).unwrap();
        let best = out.explanations[0].clone();
        q.feedback(&query, &best, true).unwrap();
        assert_eq!(q.feedback_epoch(), 1);
        q.feedback(&query, &best, false).unwrap();
        assert_eq!(q.feedback_epoch(), 2);
        // EM refinement also changes the model, so it bumps the epoch.
        q.refine_feedback_model(3).unwrap();
        assert_eq!(q.feedback_epoch(), 3);
    }

    #[test]
    fn shared_engine_accepts_concurrent_feedback() {
        // The point of the interior-mutability split: searches and feedback
        // interleave freely on an Arc-shared engine.
        let q = std::sync::Arc::new(engine());
        let query = KeywordQuery::parse("casablanca").unwrap();
        let best = q.search_query(&query).unwrap().explanations[0].clone();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let q = std::sync::Arc::clone(&q);
                let query = query.clone();
                let best = best.clone();
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        if i % 2 == 0 {
                            q.feedback(&query, &best, true).unwrap();
                        } else {
                            q.search_query(&query).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.forward().feedback_count(), 10);
        assert_eq!(q.feedback_epoch(), 10);
    }

    #[test]
    fn mutate_source_keeps_searches_fresh() {
        let mut q = engine();
        let title = q.wrapper().catalog().attr_id("movie", "title").unwrap();
        assert_eq!(
            q.wrapper().database().search_score(title, "oz"),
            0.0,
            "no match before the mutation"
        );
        q.mutate_source(|w| {
            w.database_mut()
                .insert(
                    "movie",
                    Row::new(vec![
                        12.into(),
                        "The Wizard of Oz".into(),
                        1.into(),
                        1939.into(),
                    ]),
                )
                .unwrap();
        })
        .unwrap();
        let out = q.search("oz fleming").unwrap();
        let best = &out.explanations[0];
        assert_eq!(q.execute(best).unwrap().len(), 1);
        // Searches and mutations compose: a mutated engine equals a fresh
        // engine built over the same data, bit for bit.
        let fresh = Quest::new(
            FullAccessWrapper::new(q.wrapper().database().clone()),
            QuestConfig::default(),
        )
        .unwrap();
        let a = q.search("oz fleming").unwrap();
        let b = fresh.search("oz fleming").unwrap();
        assert_eq!(a.explanations.len(), b.explanations.len());
        for (x, y) in a.explanations.iter().zip(&b.explanations) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.statement, y.statement);
        }
        // Feedback state survives a data-only resync.
        let best = a.explanations[0].clone();
        let query = KeywordQuery::parse("oz fleming").unwrap();
        q.feedback(&query, &best, true).unwrap();
        let epoch = q.feedback_epoch();
        q.mutate_source(|w| {
            w.database_mut()
                .delete("movie", &[relstore::Value::Int(11)])
                .unwrap();
        })
        .unwrap();
        assert_eq!(q.feedback_epoch(), epoch, "data resync keeps feedback");
        assert_eq!(q.forward().feedback_count(), 1);
    }

    #[test]
    fn empty_query_rejected() {
        let q = engine();
        assert!(matches!(q.search("   "), Err(QuestError::EmptyQuery)));
    }
}
