//! Write-path and query-path span tracing with explicit context
//! propagation.
//!
//! A [`TraceCtx`] is the identity of one logical operation — a commit, a
//! query, or a replica sync round — minted by [`SpanCollector::ctx`] and
//! passed *explicitly* down the call chain (`Primary::commit` → WAL
//! append/fsync → engine apply → cache epoch bump). Each instrumented
//! section records one [`SpanRecord`] carrying the ctx id, so the spans of
//! one commit can be reassembled into a tree and laid out on a timeline by
//! the Chrome trace-event export
//! ([`to_chrome_trace_json`](crate::export::to_chrome_trace_json)).
//!
//! The collector follows the registry's inertness discipline: span records
//! are `Copy` (static names, fixed-size args), slots are pre-allocated, and
//! recording is gated on a single relaxed load — a disabled collector
//! ([`SpanCollector::disabled`], or `QUEST_OBS_SPAN_CAPACITY=0`) performs
//! **no allocation and no clock read** on the hot path:
//! [`SpanCollector::start`] returns `None` before touching the clock, and
//! [`SpanCollector::record`] returns before building anything.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Which logical operation family a trace belongs to. Families map to
/// distinct `pid` lanes in the Chrome trace export so write-path, query,
/// and replica timelines render side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The write path: `Primary::commit`, WAL append/fsync, engine apply,
    /// cache epoch bump.
    Commit,
    /// The read path: one served query (forward/backward/assemble stages,
    /// per-shard scatter).
    Query,
    /// A replica sync round: log tail plus apply.
    Replica,
}

impl TraceKind {
    /// The Chrome trace `pid` lane for this family.
    pub fn pid(self) -> u64 {
        match self {
            TraceKind::Commit => 1,
            TraceKind::Query => 2,
            TraceKind::Replica => 3,
        }
    }

    /// Human-readable lane name (the Chrome trace `process_name`).
    pub fn lane(self) -> &'static str {
        match self {
            TraceKind::Commit => "write-path",
            TraceKind::Query => "queries",
            TraceKind::Replica => "replicas",
        }
    }
}

/// The explicit trace context threaded through an instrumented call chain:
/// a process-unique operation id plus the operation family. `Copy`, two
/// words — cheap to pass by value through every layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Process-unique id of the traced operation (a commit id or query id).
    /// 0 means "detached": spans still record, but under an anonymous
    /// trace.
    pub id: u64,
    /// The operation family.
    pub kind: TraceKind,
}

impl TraceCtx {
    /// A detached context (id 0) for call sites with no propagated parent.
    pub fn detached(kind: TraceKind) -> TraceCtx {
        TraceCtx { id: 0, kind }
    }
}

/// Up to two `(label, value)` numeric arguments attached to a span.
pub type SpanArgs = [Option<(&'static str, u64)>; 2];

/// One completed span: a named section of one traced operation. `Copy` —
/// static name, fixed args — so pushing into the ring never allocates.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Sequence number assigned by the collector at push time.
    pub seq: u64,
    /// The owning operation's id ([`TraceCtx::id`]).
    pub trace_id: u64,
    /// The owning operation's family.
    pub kind: TraceKind,
    /// Section name (e.g. `wal_append`, `cache_epoch_bump`).
    pub name: &'static str,
    /// Start offset from the collector's epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Recording thread (small per-process ordinal, the Chrome `tid`).
    pub tid: u64,
    /// Numeric arguments (`None`-padded).
    pub args: SpanArgs,
}

/// A small per-process thread ordinal, assigned on first use — the `tid`
/// lane spans render under.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// A bounded, lock-light ring of completed spans (the write-path sibling of
/// [`TraceRing`](crate::TraceRing)): writers claim slots with one atomic
/// `fetch_add` and records are `Copy`, so recording never allocates.
#[derive(Debug)]
pub struct SpanCollector {
    enabled: AtomicBool,
    epoch: Instant,
    next_trace: AtomicU64,
    slots: Vec<Mutex<Option<SpanRecord>>>,
    head: AtomicU64,
}

impl SpanCollector {
    /// A collector retaining the last `capacity` spans (0 disables
    /// recording entirely).
    pub fn new(capacity: usize) -> SpanCollector {
        SpanCollector {
            enabled: AtomicBool::new(capacity > 0),
            epoch: Instant::now(),
            next_trace: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// A collector whose recording calls are near-no-ops: [`start`]
    /// returns `None` after one relaxed load, so instrumented sections
    /// skip the clock reads and the record entirely.
    ///
    /// [`start`]: SpanCollector::start
    pub fn disabled() -> SpanCollector {
        let c = SpanCollector::new(0);
        c.set_enabled(false);
        c
    }

    /// Capacity from `QUEST_OBS_SPAN_CAPACITY` (default 2048; 0 disables).
    /// Unparsable values fall back silently — observability must never
    /// take the service down.
    pub fn from_env() -> SpanCollector {
        let capacity = std::env::var("QUEST_OBS_SPAN_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(2048);
        SpanCollector::new(capacity)
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        !self.slots.is_empty() && self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off (a zero-capacity collector stays off).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Maximum spans retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans ever pushed (retained plus overwritten).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Mint a fresh trace context for one logical operation. Ids are
    /// process-unique and start at 1 (0 is the detached sentinel).
    pub fn ctx(&self, kind: TraceKind) -> TraceCtx {
        TraceCtx {
            id: self.next_trace.fetch_add(1, Ordering::Relaxed) + 1,
            kind,
        }
    }

    /// Begin a section: returns the start instant, or `None` when
    /// disabled — the no-allocation, no-clock fast path. Pass the result
    /// to [`SpanCollector::record`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish a section begun with [`SpanCollector::start`]: a `None`
    /// start (disabled at begin time) records nothing.
    #[inline]
    pub fn record(&self, ctx: TraceCtx, name: &'static str, started: Option<Instant>) {
        self.record_with(ctx, name, started, [None, None]);
    }

    /// Finish a section, attaching up to two numeric arguments.
    pub fn record_with(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        started: Option<Instant>,
        args: SpanArgs,
    ) {
        let Some(started) = started else { return };
        if !self.is_enabled() {
            return;
        }
        let dur_us = crate::duration_us(started.elapsed());
        let start_us = crate::duration_us(started.saturating_duration_since(self.epoch));
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let record = SpanRecord {
            seq,
            trace_id: ctx.id,
            kind: ctx.kind,
            name,
            start_us,
            dur_us,
            tid: thread_id(),
            args,
        };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(record);
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| *s.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        spans.sort_by_key(|s| s.seq);
        spans
    }

    /// Drop every retained span (the head — and with it `seq` — keeps
    /// counting).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
    }
}

/// The process-wide span collector, sized by `QUEST_OBS_SPAN_CAPACITY` at
/// first use. The WAL, replica, shard, and serving layers all record here,
/// so one Chrome trace export sees every lane of the process.
pub fn spans() -> &'static SpanCollector {
    static SPANS: OnceLock<SpanCollector> = OnceLock::new();
    SPANS.get_or_init(SpanCollector::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_with_ctx_and_sort_by_seq() {
        let c = SpanCollector::new(8);
        let ctx = c.ctx(TraceKind::Commit);
        assert!(ctx.id >= 1);
        let t = c.start();
        assert!(t.is_some());
        c.record_with(ctx, "wal_append", t, [Some(("records", 3)), None]);
        c.record(ctx, "engine_apply", c.start());
        let spans = c.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "wal_append");
        assert_eq!(spans[0].trace_id, ctx.id);
        assert_eq!(spans[0].args[0], Some(("records", 3)));
        assert!(spans[0].seq < spans[1].seq);
        assert_eq!(c.pushed(), 2);
    }

    #[test]
    fn disabled_collector_skips_clock_and_storage() {
        let c = SpanCollector::disabled();
        assert!(!c.is_enabled());
        assert!(c.start().is_none(), "no clock read when disabled");
        // A stale Some(start) from before a disable still records nothing.
        c.record(c.ctx(TraceKind::Query), "q", Some(Instant::now()));
        assert!(c.recent().is_empty());
        assert_eq!(c.pushed(), 0);
    }

    #[test]
    fn zero_capacity_is_disabled_even_when_enabled_flag_is_set() {
        let c = SpanCollector::new(0);
        c.set_enabled(true);
        assert!(!c.is_enabled());
        assert!(c.start().is_none());
    }

    #[test]
    fn ring_overwrites_oldest() {
        let c = SpanCollector::new(2);
        let ctx = c.ctx(TraceKind::Replica);
        for _ in 0..3 {
            c.record(ctx, "tail", c.start());
        }
        let spans = c.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].seq, spans[1].seq), (1, 2));
    }

    #[test]
    fn ctx_ids_are_unique_and_nonzero() {
        let c = SpanCollector::new(1);
        let a = c.ctx(TraceKind::Commit);
        let b = c.ctx(TraceKind::Query);
        assert_ne!(a.id, b.id);
        assert_ne!(a.id, 0);
        assert_eq!(TraceCtx::detached(TraceKind::Commit).id, 0);
    }

    #[test]
    fn thread_ids_are_stable_per_thread() {
        let mine = thread_id();
        assert_eq!(mine, thread_id());
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(mine, other);
    }
}
