//! The [`MetricsRegistry`]: named counters, gauges, and histograms.
//!
//! Registration (name → handle) takes a mutex, but it happens once per
//! metric at construction time; the returned handles are `Arc`-backed and
//! record through relaxed atomics only. A registry built with
//! [`MetricsRegistry::disabled`] hands out the same handles but every
//! recording call returns after one relaxed load — the near-no-op mode the
//! serving layer's inertness proof relies on.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::histogram::{HistogramCore, HistogramSnapshot};

/// A label set: `(key, value)` pairs, kept sorted for deterministic
/// identity and rendering.
pub type Labels = Vec<(String, String)>;

fn labels_of(pairs: &[(&str, &str)]) -> Labels {
    let mut labels: Labels = pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    labels
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, lag, entries).
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Add `n` and return the updated value (the current value when
    /// disabled). [`WindowedGauge`] uses this to observe the level it just
    /// produced without a second racy read.
    #[inline]
    pub fn add_get(&self, n: i64) -> i64 {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed) + n
        } else {
            self.value.load(Ordering::Relaxed)
        }
    }

    /// Lower the value to `v` if it is currently higher (window-minimum
    /// tracking).
    #[inline]
    pub fn observe_min(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_min(v, Ordering::Relaxed);
        }
    }

    /// Raise the value to `v` if it is currently lower (window-maximum
    /// tracking).
    #[inline]
    pub fn observe_max(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge that additionally tracks the min/max it reached since the last
/// [`WindowedGauge::reset_window`] — published as two sibling gauges
/// (`<name>_min`, `<name>_max`) so a scrape sees spikes that came and went
/// *between* scrapes, not just the instantaneous level. Every movement
/// observes the new level into both extremes with relaxed `fetch_min`/
/// `fetch_max`, so the hot path stays lock- and allocation-free.
#[derive(Debug, Clone)]
pub struct WindowedGauge {
    value: Gauge,
    min: Gauge,
    max: Gauge,
}

impl WindowedGauge {
    /// Overwrite the value, folding it into the window extremes.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.set(v);
        self.min.observe_min(v);
        self.max.observe_max(v);
    }

    /// Move the value by `n`, folding the new level into the extremes.
    #[inline]
    pub fn add(&self, n: i64) {
        let now = self.value.add_get(n);
        self.min.observe_min(now);
        self.max.observe_max(now);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current instantaneous value.
    pub fn value(&self) -> i64 {
        self.value.value()
    }

    /// Lowest level since the last window reset.
    pub fn window_min(&self) -> i64 {
        self.min.value()
    }

    /// Highest level since the last window reset.
    pub fn window_max(&self) -> i64 {
        self.max.value()
    }

    /// Collapse both extremes to the current value — called by the scraper
    /// *after* it snapshots, so each scrape interval reports its own
    /// min/max.
    pub fn reset_window(&self) {
        let v = self.value.value();
        self.min.set(v);
        self.max.set(v);
    }

    /// The underlying instantaneous gauge handle.
    pub fn gauge(&self) -> &Gauge {
        &self.value
    }
}

/// A log-bucketed histogram handle (see [`crate::histogram`]).
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one value (typically nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.record(value);
        }
    }

    /// Record a [`std::time::Duration`] in nanoseconds (saturating at
    /// `u64::MAX`, i.e. after ~584 years).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

/// What one registered metric held at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A [`Counter`] reading.
    Counter(u64),
    /// A [`Gauge`] reading.
    Gauge(i64),
    /// A [`Histogram`] reading (boxed: the bucket array dwarfs the scalar
    /// variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One metric in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (`[a-zA-Z_][a-zA-Z0-9_]*`, conventionally
    /// `quest_<layer>_<what>[_<unit>|_total]`).
    pub name: String,
    /// Sorted label pairs (empty for unlabeled metrics).
    pub labels: Labels,
    /// The reading.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// `name{k="v",..}` — the canonical identity used for sorting, merging,
    /// and the exporters.
    pub fn full_name(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, pairs.join(","))
    }
}

/// A deterministic (name-sorted) point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Every registered metric, sorted by `(name, labels)`.
    pub metrics: Vec<MetricSnapshot>,
    /// Per-family help text ([`MetricsRegistry::describe`]) — the
    /// Prometheus exporter renders these as `# HELP` lines.
    pub help: BTreeMap<String, String>,
}

impl MetricsSnapshot {
    /// Look a metric up by bare name (first label set wins).
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// Every metric sharing `name` (one per label set).
    pub fn get_all<'a>(&'a self, name: &str) -> Vec<&'a MetricSnapshot> {
        self.metrics.iter().filter(|m| m.name == name).collect()
    }

    /// Convenience: the histogram under `name`, if registered as one.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Convenience: the counter under `name`, if registered as one.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: the gauge under `name`, if registered as one.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Lossless union with another snapshot: same-identity counters add,
    /// histograms merge bucket-wise, gauges keep `other`'s (later) reading;
    /// metrics present on one side only carry over unchanged. Merging
    /// per-engine snapshots this way equals one registry that saw all the
    /// traffic.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for theirs in &other.metrics {
            match self
                .metrics
                .iter_mut()
                .find(|m| m.name == theirs.name && m.labels == theirs.labels)
            {
                None => self.metrics.push(theirs.clone()),
                Some(ours) => match (&mut ours.value, &theirs.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                        *a = a.wrapping_add(*b);
                    }
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    // Kind mismatch across registries: keep ours; the
                    // exporters would otherwise emit conflicting TYPE lines.
                    _ => {}
                },
            }
        }
        for (name, help) in &other.help {
            self.help
                .entry(name.clone())
                .or_insert_with(|| help.clone());
        }
        self.metrics
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }
}

#[derive(Debug)]
enum MetricKind {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

/// An atomic registry of named metrics.
///
/// `counter` / `gauge` / `histogram` get-or-create by `(name, labels)`, so
/// independently constructed components that name the same metric share one
/// series. Keep the returned handle and record through it — the hot path is
/// then handle-local atomics with no name lookup.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<(String, Labels), MetricKind>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: Arc::new(AtomicBool::new(true)),
            metrics: Mutex::new(BTreeMap::new()),
            help: Mutex::new(BTreeMap::new()),
        }
    }

    /// A registry whose handles are near-no-ops: every recording call
    /// returns after a single relaxed load, nothing is ever written.
    pub fn disabled() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.set_enabled(false);
        r
    }

    /// Whether recording is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off; existing handles observe the change on
    /// their next call.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    fn map(&self) -> std::sync::MutexGuard<'_, BTreeMap<(String, Labels), MetricKind>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attach family help text, rendered by the Prometheus exporter as a
    /// `# HELP` line. First writer wins (help is documentation, not
    /// state).
    pub fn describe(&self, name: &str, help: &str) {
        self.help
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
    }

    /// Get-or-create an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get-or-create a labeled counter.
    ///
    /// # Panics
    /// If `name` was already registered with a different metric kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = (name.to_string(), labels_of(labels));
        let mut map = self.map();
        let kind = map
            .entry(key)
            .or_insert_with(|| MetricKind::Counter(Arc::new(AtomicU64::new(0))));
        match kind {
            MetricKind::Counter(v) => Counter {
                enabled: Arc::clone(&self.enabled),
                value: Arc::clone(v),
            },
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get-or-create a labeled gauge.
    ///
    /// # Panics
    /// If `name` was already registered with a different metric kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = (name.to_string(), labels_of(labels));
        let mut map = self.map();
        let kind = map
            .entry(key)
            .or_insert_with(|| MetricKind::Gauge(Arc::new(AtomicI64::new(0))));
        match kind {
            MetricKind::Gauge(v) => Gauge {
                enabled: Arc::clone(&self.enabled),
                value: Arc::clone(v),
            },
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create an unlabeled windowed gauge (see [`WindowedGauge`]).
    pub fn windowed_gauge(&self, name: &str) -> WindowedGauge {
        self.windowed_gauge_with(name, &[])
    }

    /// Get-or-create a labeled windowed gauge: the instantaneous series
    /// under `name` plus `<name>_min` / `<name>_max` extreme trackers.
    /// Freshly created extremes are seeded to the current value so an
    /// untouched window reads the instantaneous level, not zero.
    ///
    /// # Panics
    /// If any of the three names was already registered with a different
    /// metric kind.
    pub fn windowed_gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> WindowedGauge {
        let min_name = format!("{name}_min");
        let max_name = format!("{name}_max");
        let fresh = !self
            .map()
            .contains_key(&(min_name.clone(), labels_of(labels)));
        let value = self.gauge_with(name, labels);
        let min = self.gauge_with(&min_name, labels);
        let max = self.gauge_with(&max_name, labels);
        if fresh {
            min.set(value.value());
            max.set(value.value());
        }
        WindowedGauge { value, min, max }
    }

    /// Get-or-create an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Get-or-create a labeled histogram.
    ///
    /// # Panics
    /// If `name` was already registered with a different metric kind.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = (name.to_string(), labels_of(labels));
        let mut map = self.map();
        let kind = map
            .entry(key)
            .or_insert_with(|| MetricKind::Histogram(Arc::new(HistogramCore::default())));
        match kind {
            MetricKind::Histogram(core) => Histogram {
                enabled: Arc::clone(&self.enabled),
                core: Arc::clone(core),
            },
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A deterministic point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.map();
        let metrics = map
            .iter()
            .map(|((name, labels), kind)| MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: match kind {
                    MetricKind::Counter(v) => MetricValue::Counter(v.load(Ordering::Relaxed)),
                    MetricKind::Gauge(v) => MetricValue::Gauge(v.load(Ordering::Relaxed)),
                    MetricKind::Histogram(core) => {
                        MetricValue::Histogram(Box::new(core.snapshot()))
                    }
                },
            })
            .collect();
        // BTreeMap iteration is already (name, labels)-sorted.
        MetricsSnapshot {
            metrics,
            help: self
                .help
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_series_by_name_and_labels() {
        let r = MetricsRegistry::new();
        r.counter("hits").add(2);
        r.counter("hits").inc();
        assert_eq!(r.snapshot().counter("hits"), Some(3));

        r.counter_with("lag", &[("replica", "a")]).add(5);
        r.counter_with("lag", &[("replica", "b")]).add(7);
        let snap = r.snapshot();
        assert_eq!(snap.get_all("lag").len(), 2);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::disabled();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h");
        c.add(10);
        g.set(5);
        h.record(123);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.snapshot().count, 0);
        // Re-enabling makes the same handles live.
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = MetricsRegistry::new();
        let g = r.gauge("depth");
        g.add(3);
        g.sub(1);
        assert_eq!(g.value(), 2);
        g.set(-4);
        assert_eq!(r.snapshot().gauge("depth"), Some(-4));
    }

    #[test]
    fn snapshot_merge_is_lossless_for_counters_and_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let union = MetricsRegistry::new();
        for (r, values) in [(&a, &[3u64, 900][..]), (&b, &[17, 60_000][..])] {
            let h = r.histogram("lat");
            for &v in values {
                h.record(v);
                union.histogram("lat").record(v);
            }
            r.counter("n").add(values.len() as u64);
            union.counter("n").add(values.len() as u64);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn windowed_gauge_tracks_extremes_between_resets() {
        let r = MetricsRegistry::new();
        let g = r.windowed_gauge("depth");
        g.add(5);
        g.sub(7);
        g.set(1);
        assert_eq!(g.value(), 1);
        assert_eq!((g.window_min(), g.window_max()), (-2, 5));
        let snap = r.snapshot();
        assert_eq!(snap.gauge("depth_min"), Some(-2));
        assert_eq!(snap.gauge("depth_max"), Some(5));
        g.reset_window();
        assert_eq!((g.window_min(), g.window_max()), (1, 1));
    }

    #[test]
    fn windowed_gauge_seeds_extremes_from_existing_value() {
        let r = MetricsRegistry::new();
        r.gauge_with("lag", &[("replica", "a")]).set(9);
        let g = r.windowed_gauge_with("lag", &[("replica", "a")]);
        assert_eq!((g.window_min(), g.window_max()), (9, 9));
        g.set(3);
        assert_eq!((g.window_min(), g.window_max()), (3, 9));
    }

    #[test]
    fn describe_attaches_help_and_merge_unions_it() {
        let a = MetricsRegistry::new();
        a.counter("hits").inc();
        a.describe("hits", "Total hits.");
        a.describe("hits", "ignored: first writer wins");
        let b = MetricsRegistry::new();
        b.describe("misses", "Total misses.");
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(
            snap.help.get("hits").map(String::as_str),
            Some("Total hits.")
        );
        assert_eq!(
            snap.help.get("misses").map(String::as_str),
            Some("Total misses.")
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic_at_registration() {
        let r = MetricsRegistry::new();
        let _c = r.counter("x");
        let _g = r.gauge("x");
    }
}
