//! Per-query span traces, the bounded trace ring, and the slow-query log.
//!
//! A [`QueryTrace`] is one query's stage walls plus the cache/template/shard
//! facts that explain them. Traces land in a [`TraceRing`] — a fixed-size
//! ring addressed by an atomic head, so concurrent writers claim distinct
//! slots without a shared lock — and queries whose total wall clears the
//! configured threshold are additionally copied into a second, smaller ring:
//! the slow-query log. Trace construction is **lazy**
//! ([`TraceSink::record_with`]): when neither ring wants the trace (tracing
//! disabled, query under the slow threshold), the builder closure is never
//! called and the fast path allocates nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// What the backward module's join-path template memo did for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TemplateOutcome {
    /// Every consulted template was memoized.
    Hit,
    /// At least one template had to be computed.
    Miss,
    /// The memo was not consulted (e.g. every configuration came from the
    /// backward result cache).
    #[default]
    Unused,
}

impl TemplateOutcome {
    /// Classify a per-query delta of the memo's hit/miss counters.
    pub fn from_delta(hits: u64, misses: u64) -> TemplateOutcome {
        match (hits, misses) {
            (0, 0) => TemplateOutcome::Unused,
            (_, 0) => TemplateOutcome::Hit,
            _ => TemplateOutcome::Miss,
        }
    }
}

/// One query's span record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    /// Monotonic sequence number assigned by the ring (0 until stored).
    pub seq: u64,
    /// The raw query text.
    pub query: String,
    /// Whether the search succeeded.
    pub ok: bool,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Forward-stage wall (cache lookup plus any computation), microseconds.
    pub forward_us: u64,
    /// Backward-stage wall, microseconds.
    pub backward_us: u64,
    /// Assembly wall, microseconds.
    pub assemble_us: u64,
    /// Whether the forward stage was served from the cache.
    pub forward_cache_hit: bool,
    /// Backward-cache hits across this query's configurations.
    pub backward_cache_hits: u32,
    /// Backward-cache misses (Steiner enumerations actually run).
    pub backward_cache_misses: u32,
    /// What the join-path template memo did (best-effort under concurrency:
    /// the delta of shared counters can blend in a concurrent query's work).
    pub template_memo: TemplateOutcome,
    /// Per-shard scatter work during the forward stage, `(shard index,
    /// microseconds)`; empty on unsharded engines or forward-cache hits.
    pub shard_scatter_us: Vec<(usize, u64)>,
}

/// A fixed-capacity ring of traces: writers claim slots with one atomic
/// `fetch_add`, so the only lock ever touched is the claimed slot's own
/// (contended only when the ring wraps onto an in-flight writer).
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<QueryTrace>>>,
    head: AtomicU64,
}

impl TraceRing {
    /// A ring holding the last `capacity` traces (0 disables storage).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Maximum traces held.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Traces ever pushed (stored plus overwritten).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Store a trace, overwriting the oldest once full. Assigns `seq`.
    pub fn push(&self, mut trace: QueryTrace) {
        if self.slots.is_empty() {
            return;
        }
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        trace.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(trace);
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<QueryTrace> {
        let mut traces: Vec<QueryTrace> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        traces.sort_by_key(|t| t.seq);
        traces
    }

    /// Drop every stored trace (the head — and with it `seq` — keeps
    /// counting).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
    }
}

/// Tracing knobs, resolvable from the environment.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Capacity of the all-queries trace ring (0 disables it).
    pub ring_capacity: usize,
    /// Capacity of the slow-query log.
    pub slow_capacity: usize,
    /// Queries at or above this many microseconds of total wall enter the
    /// slow-query log; 0 disables the log.
    pub slow_query_us: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 256,
            slow_capacity: 64,
            // 50ms: far above any healthy QUEST query, so the log stays
            // silent until something is genuinely wrong.
            slow_query_us: 50_000,
        }
    }
}

impl TraceConfig {
    /// Defaults overridden by `QUEST_OBS_TRACE_CAPACITY` and
    /// `QUEST_OBS_SLOW_QUERY_US` (unparsable values fall back silently —
    /// observability must never take the service down).
    pub fn from_env() -> TraceConfig {
        let mut config = TraceConfig::default();
        if let Some(n) = env_u64("QUEST_OBS_TRACE_CAPACITY") {
            config.ring_capacity = n as usize;
        }
        if let Some(n) = env_u64("QUEST_OBS_SLOW_QUERY_US") {
            config.slow_query_us = n;
        }
        config
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// The trace ring and slow-query log behind one lazy recording API.
#[derive(Debug)]
pub struct TraceSink {
    config: TraceConfig,
    ring: TraceRing,
    slow: TraceRing,
    slow_total: AtomicU64,
}

impl TraceSink {
    /// Build a sink from explicit knobs.
    pub fn new(config: TraceConfig) -> TraceSink {
        TraceSink {
            ring: TraceRing::new(config.ring_capacity),
            slow: TraceRing::new(config.slow_capacity),
            slow_total: AtomicU64::new(0),
            config,
        }
    }

    /// The knobs this sink runs with.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Whether a query of `total_us` would be stored anywhere. When this is
    /// false the caller can skip building the trace entirely — which is
    /// what keeps fast queries allocation-free when only the slow log is on.
    pub fn wants(&self, total_us: u64) -> bool {
        self.ring.capacity() > 0 || self.is_slow(total_us)
    }

    fn is_slow(&self, total_us: u64) -> bool {
        self.config.slow_query_us > 0 && total_us >= self.config.slow_query_us
    }

    /// Record lazily: `build` runs only if some ring will store the trace.
    /// Returns whether the query was classified slow.
    pub fn record_with(&self, total_us: u64, build: impl FnOnce() -> QueryTrace) -> bool {
        let slow = self.is_slow(total_us);
        if !self.wants(total_us) {
            return false;
        }
        let trace = build();
        if slow {
            self.slow_total.fetch_add(1, Ordering::Relaxed);
            if self.ring.capacity() == 0 {
                self.slow.push(trace);
                return true;
            }
            self.slow.push(trace.clone());
        }
        self.ring.push(trace);
        slow
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<QueryTrace> {
        self.ring.recent()
    }

    /// The retained slow queries, oldest first.
    pub fn slow_queries(&self) -> Vec<QueryTrace> {
        self.slow.recent()
    }

    /// Queries ever classified slow (retained or since overwritten).
    pub fn slow_total(&self) -> u64 {
        self.slow_total.load(Ordering::Relaxed)
    }
}

/// Thread-local per-shard scatter accounting.
///
/// The sharded store's scatter fan-out happens levels below the serving
/// layer that owns the query trace, with no shared object between them. The
/// store deposits its per-shard timings here (on the query's own thread,
/// after its internal fan-out joins), and the serving layer drains them into
/// the [`QueryTrace`] when the query completes. A query runs on one thread
/// end to end, so the handoff needs no synchronization.
pub mod scatter {
    use std::cell::RefCell;

    thread_local! {
        static SCATTER: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
    }

    /// Deposit one shard's scatter work (microseconds) for the query
    /// currently running on this thread.
    pub fn record(shard: usize, us: u64) {
        SCATTER.with(|s| s.borrow_mut().push((shard, us)));
    }

    /// Drain everything deposited on this thread since the last take.
    pub fn take() -> Vec<(usize, u64)> {
        SCATTER.with(|s| std::mem::take(&mut *s.borrow_mut()))
    }

    /// Drop deposits without allocating (start-of-query hygiene).
    pub fn reset() {
        SCATTER.with(|s| s.borrow_mut().clear());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(total_us: u64) -> QueryTrace {
        QueryTrace {
            query: "q".into(),
            ok: true,
            total_us,
            forward_us: total_us / 2,
            backward_us: total_us / 4,
            assemble_us: total_us / 4,
            ..QueryTrace::default()
        }
    }

    #[test]
    fn ring_keeps_the_last_capacity_traces() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push(trace(i));
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|t| t.total_us).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(
            recent.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(ring.pushed(), 5);
    }

    #[test]
    fn zero_capacity_ring_stores_nothing() {
        let ring = TraceRing::new(0);
        ring.push(trace(1));
        assert!(ring.recent().is_empty());
    }

    #[test]
    fn slow_log_gates_on_threshold_and_fast_queries_skip_the_builder() {
        let sink = TraceSink::new(TraceConfig {
            ring_capacity: 0, // only the slow log is live
            slow_capacity: 8,
            slow_query_us: 1000,
        });
        let mut built = false;
        let slow = sink.record_with(999, || {
            built = true;
            trace(999)
        });
        assert!(!slow);
        assert!(!built, "fast query must not build a trace");
        assert!(sink.slow_queries().is_empty());

        let slow = sink.record_with(1000, || trace(1000));
        assert!(slow);
        let slow_queries = sink.slow_queries();
        assert_eq!(slow_queries.len(), 1);
        assert_eq!(slow_queries[0].total_us, 1000);
        assert_eq!(sink.slow_total(), 1);
    }

    #[test]
    fn disabled_slow_log_never_classifies() {
        let sink = TraceSink::new(TraceConfig {
            ring_capacity: 2,
            slow_capacity: 2,
            slow_query_us: 0,
        });
        assert!(!sink.record_with(u64::MAX, || trace(1)));
        assert!(sink.slow_queries().is_empty());
        assert_eq!(sink.recent().len(), 1, "the main ring still stores");
    }

    #[test]
    fn scatter_handoff_roundtrips_per_thread() {
        scatter::reset();
        scatter::record(0, 10);
        scatter::record(3, 7);
        assert_eq!(scatter::take(), vec![(0, 10), (3, 7)]);
        assert!(scatter::take().is_empty(), "take drains");
    }

    #[test]
    fn template_outcome_classification() {
        assert_eq!(TemplateOutcome::from_delta(0, 0), TemplateOutcome::Unused);
        assert_eq!(TemplateOutcome::from_delta(2, 0), TemplateOutcome::Hit);
        assert_eq!(TemplateOutcome::from_delta(2, 1), TemplateOutcome::Miss);
    }
}
