//! Zero-dependency observability core for the QUEST stack: an atomic
//! [`MetricsRegistry`] of counters, gauges, and log-bucketed latency
//! histograms; per-query [`QueryTrace`] spans in a bounded ring with a
//! threshold-gated slow-query log; and two exporters (Prometheus text
//! exposition, JSON snapshot).
//!
//! Design constraints, in order:
//!
//! 1. **Inert.** Recording is relaxed atomics behind handles resolved at
//!    construction time — no locks, no allocation, no branches beyond one
//!    enabled check on the hot path. A [`MetricsRegistry::disabled`]
//!    registry reduces every recording call to a single relaxed load, and
//!    the serving/replica/shard bit-identity suites run with
//!    instrumentation live.
//! 2. **Dependency-free.** Sits below every runtime crate (even
//!    `quest-wal`), so it can be wired through the whole stack without
//!    cycles, and builds offline.
//! 3. **Exact where it counts.** Histogram `count`/`sum`/`max` are exact;
//!    percentiles are exact *bucket bounds* (factor-of-two intervals), not
//!    interpolations; merges are lossless.
//!
//! Two registries matter in practice: each `CachedEngine` owns one (its
//! snapshot rides along in `ServeStats`), and [`global()`] aggregates the
//! layers with no natural owner — the WAL, replication, and shard fan-out
//! paths. Beyond the registry, four observability subsystems build on it:
//!
//! - **Span tracing** ([`span`]): explicit-[`TraceCtx`] spans through the
//!   write path and query path, collected in the bounded [`spans()`] ring
//!   and exported as Chrome trace-event JSON
//!   ([`to_chrome_trace_json`]).
//! - **Windowed aggregation** ([`window`]): rolling-window rates, deltas,
//!   sliding percentiles, and gauge extremes over [`MetricsSnapshot`]
//!   samples, counter-reset tolerant.
//! - **SLO health** ([`health`]): declarative [`SloSpec`] bounds graded
//!   into a [`HealthReport`] — strictly observational.
//! - **Amplification accounting**: the WAL/replica/shard layers publish
//!   logical-vs-physical byte and probe counters here; `bench-json`
//!   reports the ratios.
//!
//! Env knobs: `QUEST_OBS_SLOW_QUERY_US` (slow-query threshold,
//! microseconds), `QUEST_OBS_TRACE_CAPACITY` (trace ring size; 0 disables
//! tracing) — see [`TraceConfig::from_env`]; `QUEST_OBS_SPAN_CAPACITY`
//! (span ring size; 0 disables span tracing) — see
//! [`SpanCollector::from_env`]; `QUEST_OBS_WINDOW_SECS` (rolling window
//! width) — see [`WindowConfig::from_env`].

#![warn(missing_docs)]

pub mod export;
pub mod health;
pub mod histogram;
pub mod metrics;
pub mod span;
pub mod trace;
pub mod window;

pub use export::{
    parse_prometheus_text, to_chrome_trace_json, to_json, to_prometheus_text, ParsedSample,
};
pub use health::{HealthInputs, HealthReport, HealthStatus, SloSpec};
pub use histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, HistogramSnapshot, BUCKETS,
};
pub use metrics::{
    Counter, Gauge, Histogram, Labels, MetricSnapshot, MetricValue, MetricsRegistry,
    MetricsSnapshot, WindowedGauge,
};
pub use span::{spans, SpanCollector, SpanRecord, TraceCtx, TraceKind};
pub use trace::{scatter, QueryTrace, TemplateOutcome, TraceConfig, TraceRing, TraceSink};
pub use window::{WindowAggregator, WindowConfig, WindowRates};

use std::sync::OnceLock;

/// The process-wide registry for layers with no natural per-instance owner:
/// WAL writers, replicas, routers, and shard stores all record here, so one
/// scrape sees the whole process. Always enabled by default; flip it off
/// with `global().set_enabled(false)` for a near-no-op stack.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Saturating `Duration` → whole microseconds (the unit traces use).
pub fn duration_us(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Saturating `Duration` → whole nanoseconds (the unit latency histograms
/// use — nanoseconds keep histogram sums exact, so wall-time totals derived
/// from them match dedicated accumulators bit for bit).
pub fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared_and_enabled() {
        assert!(global().is_enabled());
        let c = global().counter("quest_obs_selftest_total");
        c.inc();
        assert!(global().snapshot().counter("quest_obs_selftest_total") >= Some(1));
    }

    #[test]
    fn duration_us_floors_and_saturates() {
        assert_eq!(duration_us(std::time::Duration::from_nanos(999)), 0);
        assert_eq!(duration_us(std::time::Duration::from_micros(7)), 7);
        assert_eq!(duration_us(std::time::Duration::MAX), u64::MAX);
    }
}
