//! Log-bucketed latency histogram with exact-bound percentile readout.
//!
//! Values (u64, typically nanoseconds) land in power-of-two buckets:
//! bucket 0 holds exactly 0, bucket `i` (1..=62) holds `[2^(i-1), 2^i - 1]`,
//! and the top bucket (63) saturates — it holds everything at or above
//! `2^62`. Bucketing a value is a `leading_zeros` and recording it is three
//! relaxed atomic adds (bucket, count, sum) plus an atomic max, so the hot
//! path never locks and never allocates.
//!
//! Percentiles are **exact-bound**: [`HistogramSnapshot::percentile`]
//! returns the inclusive *upper bound* of the bucket holding the requested
//! rank, so the true recorded value is provably within
//! `[bucket_lower_bound(b), percentile(p)]` — a factor-of-two certainty
//! interval rather than an interpolated guess. `count`, `sum`, and `max`
//! are exact, and [`HistogramSnapshot::merge`] is lossless: merging two
//! snapshots is bit-identical to having recorded the union of their samples
//! into one histogram (bucketing is a pure function of the value).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one zero bucket, 62 power-of-two ranges, one
/// saturating top bucket.
pub const BUCKETS: usize = 64;

/// Index of the saturating top bucket.
pub const TOP_BUCKET: usize = BUCKETS - 1;

/// The bucket a value lands in (a pure function — merge losslessness and
/// the property suite both lean on this).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(TOP_BUCKET)
    }
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= TOP_BUCKET => 1 << (TOP_BUCKET - 1),
        i => 1 << (i - 1),
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the saturating top).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= TOP_BUCKET => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// The lock-free recording core shared by every clone of a
/// [`Histogram`](crate::Histogram) handle.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    /// Record one value: three relaxed adds and a relaxed max.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters. Under concurrent recording the
    /// fields are each individually correct but may straddle an in-flight
    /// record (count and buckets can disagree by the records in flight).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a histogram's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all recorded values (wrapping only past `u64::MAX`).
    pub sum: u64,
    /// Exact largest recorded value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Exact-bound percentile: the inclusive upper bound of the bucket that
    /// holds the sample at rank `ceil(p/100 × count)` (best-first ranking
    /// of the sorted samples). Returns 0 when nothing was recorded, and the
    /// exact `max` instead of `u64::MAX` when the rank lands in the
    /// saturating top bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == TOP_BUCKET {
                    self.max
                } else {
                    bucket_upper_bound(i)
                };
            }
        }
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lossless merge: bucket-wise and counter-wise addition, so
    /// `merge(a, b)` is bit-identical to one histogram that recorded the
    /// union of both sample streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (slot, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot = slot.wrapping_add(*n);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(inclusive upper bound, count)` pairs —
    /// the compact dump the exporters and `BENCH_pipeline.json` emit.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper_bound(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_u64_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), TOP_BUCKET);
        for i in 0..BUCKETS {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        }
        // Adjacent buckets tile with no gap.
        for i in 1..BUCKETS {
            assert_eq!(bucket_upper_bound(i - 1) + 1, bucket_lower_bound(i));
        }
    }

    #[test]
    fn percentile_is_exact_for_single_value() {
        let core = HistogramCore::default();
        for _ in 0..10 {
            core.record(1000);
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.sum, 10_000);
        assert_eq!(snap.max, 1000);
        // 1000 lands in [512, 1023]; the exact bound readout is 1023.
        let p50 = snap.percentile(50.0);
        assert_eq!(p50, 1023);
        assert!(bucket_lower_bound(bucket_index(1000)) <= 1000 && 1000 <= p50);
    }

    #[test]
    fn top_bucket_saturates_and_reports_exact_max() {
        let core = HistogramCore::default();
        core.record(u64::MAX);
        core.record(1 << 62);
        core.record(7);
        let snap = core.snapshot();
        assert_eq!(snap.buckets[TOP_BUCKET], 2);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.percentile(99.0), u64::MAX);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let snap = HistogramCore::default().snapshot();
        assert_eq!(snap.percentile(50.0), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.nonzero_buckets().is_empty());
    }
}
