//! Exporters: Prometheus text exposition and a JSON snapshot — plus a
//! strict exposition parser the smoke tests scrape with.
//!
//! Both formats are pure functions of a [`MetricsSnapshot`], so an export
//! never blocks recording. Histograms render Prometheus-style as cumulative
//! `_bucket{le="..."}` series plus `_sum` / `_count`, with the exact-bound
//! `p50`/`p95`/`p99` readouts additionally exposed as
//! `<name>_p50` (etc.) gauges — scrapers that cannot do histogram math
//! still see the tails.

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::metrics::{MetricSnapshot, MetricValue, MetricsSnapshot};

fn label_block(m: &MetricSnapshot, extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> = m
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# TYPE` lines, one sample per line, deterministic order.
pub fn to_prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_typed: Option<(&str, &str)> = None;
    for m in &snapshot.metrics {
        let kind = match m.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        // One TYPE line per metric family, not per label set.
        if last_typed != Some((m.name.as_str(), kind)) {
            let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
            last_typed = Some((m.name.as_str(), kind));
        }
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, label_block(m, None), v);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, label_block(m, None), v);
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (le, n) in h.nonzero_buckets() {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        label_block(m, Some(("le", le.to_string()))),
                        cumulative
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    m.name,
                    label_block(m, Some(("le", "+Inf".into()))),
                    h.count
                );
                let _ = writeln!(out, "{}_sum{} {}", m.name, label_block(m, None), h.sum);
                let _ = writeln!(out, "{}_count{} {}", m.name, label_block(m, None), h.count);
                for (p, label) in [(50.0, "p50"), (95.0, "p95"), (99.0, "p99")] {
                    let _ = writeln!(
                        out,
                        "{}_{label}{} {}",
                        m.name,
                        label_block(m, None),
                        h.percentile(p)
                    );
                }
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .iter()
        .map(|(le, n)| format!("[{le},{n}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.max,
        h.percentile(50.0),
        h.percentile(95.0),
        h.percentile(99.0),
        buckets.join(",")
    )
}

/// Render a snapshot as one JSON object: metric full name → value, with
/// histograms expanded to `{count, sum, max, p50, p95, p99, buckets}`.
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(snapshot.metrics.len());
    for m in &snapshot.metrics {
        let value = match &m.value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => v.to_string(),
            MetricValue::Histogram(h) => histogram_json(h),
        };
        entries.push(format!("\"{}\":{}", json_escape(&m.full_name()), value));
    }
    format!("{{{}}}", entries.join(","))
}

/// One parsed sample line of an exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Sample name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Raw label block, `{}`-stripped (empty when unlabeled).
    pub labels: String,
    /// The numeric value.
    pub value: f64,
}

/// Strictly parse a Prometheus text exposition: every non-comment line must
/// be `name[{labels}] value`, names must be valid metric identifiers, and
/// every sample's family must have been declared by a preceding `# TYPE`
/// line. This is the scrape-side half of the CI smoke test.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<ParsedSample>, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    }
    let mut families: Vec<String> = Vec::new();
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if !valid_name(name) || !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {}: bad TYPE line {line:?}", lineno + 1));
            }
            families.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value in {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: unparsable value in {line:?}", lineno + 1))?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), String::new()),
            Some((name, rest)) => {
                let labels = rest.strip_suffix('}').ok_or_else(|| {
                    format!("line {}: unterminated labels in {line:?}", lineno + 1)
                })?;
                (name.to_string(), labels.to_string())
            }
        };
        if !valid_name(&name) {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        let declared = families.iter().any(|f| {
            name == *f
                || (name.strip_prefix(f.as_str()).is_some_and(|suffix| {
                    matches!(
                        suffix,
                        "_bucket" | "_sum" | "_count" | "_p50" | "_p95" | "_p99"
                    )
                }))
        });
        if !declared {
            return Err(format!(
                "line {}: sample {name:?} has no preceding TYPE declaration",
                lineno + 1
            ));
        }
        samples.push(ParsedSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("quest_test_queries_total").add(12);
        r.gauge_with("quest_test_lag", &[("replica", "a")]).set(3);
        r.gauge_with("quest_test_lag", &[("replica", "b")]).set(-1);
        let h = r.histogram("quest_test_latency_ns");
        for v in [100, 900, 5_000, 5_000, 120_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn prometheus_roundtrips_through_the_strict_parser() {
        let text = to_prometheus_text(&sample_registry().snapshot());
        let samples = parse_prometheus_text(&text).expect("exposition parses");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .value
        };
        assert_eq!(get("quest_test_queries_total"), 12.0);
        assert_eq!(get("quest_test_latency_ns_count"), 5.0);
        assert_eq!(get("quest_test_latency_ns_sum"), 131_000.0);
        let lag: Vec<&ParsedSample> = samples
            .iter()
            .filter(|s| s.name == "quest_test_lag")
            .collect();
        assert_eq!(lag.len(), 2);
        assert!(lag
            .iter()
            .any(|s| s.labels.contains("replica=\"b\"") && s.value == -1.0));
        // Cumulative bucket counts end at the +Inf bucket == count.
        let inf = samples
            .iter()
            .find(|s| s.name == "quest_test_latency_ns_bucket" && s.labels.contains("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 5.0);
    }

    #[test]
    fn parser_rejects_undeclared_and_malformed_lines() {
        assert!(parse_prometheus_text("orphan_metric 1").is_err());
        assert!(parse_prometheus_text("# TYPE x counter\nx one").is_err());
        assert!(parse_prometheus_text("# TYPE x counter\nx{a=\"b\" 1").is_err());
        assert!(parse_prometheus_text("# TYPE x wibble\nx 1").is_err());
        assert!(parse_prometheus_text("# TYPE x counter\nx 1\n\n# comment\n").is_ok());
    }

    #[test]
    fn json_snapshot_has_expected_shape() {
        let json = to_json(&sample_registry().snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"quest_test_queries_total\":12"));
        assert!(json.contains("\"quest_test_lag{replica=\\\"a\\\"}\":3"));
        assert!(json.contains("\"count\":5"));
        assert!(json.contains("\"buckets\":[["));
    }
}
