//! Exporters: Prometheus text exposition and a JSON snapshot — plus a
//! strict exposition parser the smoke tests scrape with.
//!
//! Both formats are pure functions of a [`MetricsSnapshot`], so an export
//! never blocks recording. Histograms render Prometheus-style as cumulative
//! `_bucket{le="..."}` series plus `_sum` / `_count`, with the exact-bound
//! `p50`/`p95`/`p99` readouts additionally exposed as
//! `<name>_p50` (etc.) gauges — scrapers that cannot do histogram math
//! still see the tails.

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::metrics::{MetricSnapshot, MetricValue, MetricsSnapshot};
use crate::span::SpanRecord;
use crate::trace::QueryTrace;

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline (the three characters that would break the
/// line/quote framing).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(m: &MetricSnapshot, extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> = m
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(&v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# HELP`/`# TYPE` lines, one sample per line, deterministic
/// order, label values escaped per the format (`\\`, `\"`, `\n`).
pub fn to_prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_typed: Option<(&str, &str)> = None;
    for m in &snapshot.metrics {
        let kind = match m.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        // One HELP + TYPE pair per metric family, not per label set.
        if last_typed != Some((m.name.as_str(), kind)) {
            let help = snapshot
                .help
                .get(&m.name)
                .map(|h| escape_help(h))
                .unwrap_or_else(|| format!("QUEST metric {}.", m.name));
            let _ = writeln!(out, "# HELP {} {}", m.name, help);
            let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
            last_typed = Some((m.name.as_str(), kind));
        }
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, label_block(m, None), v);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, label_block(m, None), v);
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (le, n) in h.nonzero_buckets() {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        label_block(m, Some(("le", le.to_string()))),
                        cumulative
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    m.name,
                    label_block(m, Some(("le", "+Inf".into()))),
                    h.count
                );
                let _ = writeln!(out, "{}_sum{} {}", m.name, label_block(m, None), h.sum);
                let _ = writeln!(out, "{}_count{} {}", m.name, label_block(m, None), h.count);
                for (p, label) in [(50.0, "p50"), (95.0, "p95"), (99.0, "p99")] {
                    let _ = writeln!(
                        out,
                        "{}_{label}{} {}",
                        m.name,
                        label_block(m, None),
                        h.percentile(p)
                    );
                }
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .iter()
        .map(|(le, n)| format!("[{le},{n}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.max,
        h.percentile(50.0),
        h.percentile(95.0),
        h.percentile(99.0),
        buckets.join(",")
    )
}

/// Render a snapshot as one JSON object: metric full name → value, with
/// histograms expanded to `{count, sum, max, p50, p95, p99, buckets}`.
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(snapshot.metrics.len());
    for m in &snapshot.metrics {
        let value = match &m.value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => v.to_string(),
            MetricValue::Histogram(h) => histogram_json(h),
        };
        entries.push(format!("\"{}\":{}", json_escape(&m.full_name()), value));
    }
    format!("{{{}}}", entries.join(","))
}

/// One parsed sample line of an exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Sample name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Raw label block, `{}`-stripped (empty when unlabeled). Values keep
    /// their escapes; [`ParsedSample::label_pairs`] decodes them.
    pub labels: String,
    /// The numeric value.
    pub value: f64,
}

impl ParsedSample {
    /// Decode the raw label block into `(key, value)` pairs, unescaping
    /// `\\` / `\"` / `\n` in values — the inverse of what
    /// [`to_prometheus_text`] emits, so a scrape round-trips adversarial
    /// label values losslessly.
    pub fn label_pairs(&self) -> Result<Vec<(String, String)>, String> {
        let chars: Vec<char> = self.labels.chars().collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let mut key = String::new();
            while i < chars.len() && chars[i] != '=' {
                key.push(chars[i]);
                i += 1;
            }
            if i >= chars.len() || key.is_empty() {
                return Err(format!("bad label key in {:?}", self.labels));
            }
            i += 1; // '='
            if chars.get(i) != Some(&'"') {
                return Err(format!("unquoted label value in {:?}", self.labels));
            }
            i += 1;
            let mut value = String::new();
            loop {
                match chars.get(i) {
                    None => return Err(format!("unterminated label value in {:?}", self.labels)),
                    Some('\\') => {
                        i += 1;
                        match chars.get(i) {
                            Some('\\') => value.push('\\'),
                            Some('"') => value.push('"'),
                            Some('n') => value.push('\n'),
                            _ => return Err(format!("bad escape in {:?}", self.labels)),
                        }
                        i += 1;
                    }
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some(&c) => {
                        value.push(c);
                        i += 1;
                    }
                }
            }
            pairs.push((key, value));
            match chars.get(i) {
                Some(',') => i += 1,
                None => break,
                Some(_) => return Err(format!("expected comma in {:?}", self.labels)),
            }
        }
        Ok(pairs)
    }
}

/// Strictly parse a Prometheus text exposition: every non-comment line must
/// be `name[{labels}] value`, names must be valid metric identifiers, and
/// every sample's family must have been declared by a preceding `# TYPE`
/// line. This is the scrape-side half of the CI smoke test.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<ParsedSample>, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    }
    let mut families: Vec<String> = Vec::new();
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if !valid_name(name) || !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {}: bad TYPE line {line:?}", lineno + 1));
            }
            families.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if !valid_name(name) {
                return Err(format!("line {}: bad HELP line {line:?}", lineno + 1));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // comment
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value in {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: unparsable value in {line:?}", lineno + 1))?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), String::new()),
            Some((name, rest)) => {
                let labels = rest.strip_suffix('}').ok_or_else(|| {
                    format!("line {}: unterminated labels in {line:?}", lineno + 1)
                })?;
                (name.to_string(), labels.to_string())
            }
        };
        if !valid_name(&name) {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        let declared = families.iter().any(|f| {
            name == *f
                || (name.strip_prefix(f.as_str()).is_some_and(|suffix| {
                    matches!(
                        suffix,
                        "_bucket" | "_sum" | "_count" | "_p50" | "_p95" | "_p99"
                    )
                }))
        });
        if !declared {
            return Err(format!(
                "line {}: sample {name:?} has no preceding TYPE declaration",
                lineno + 1
            ));
        }
        samples.push(ParsedSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Placement of one complete (`ph: "X"`) event: when, for how long, and
/// on which process/thread lane the viewer draws it.
struct ChromeSlot {
    ts: u64,
    dur: u64,
    pid: u64,
    tid: u64,
}

fn chrome_event(
    out: &mut String,
    name: &str,
    cat: &str,
    slot: ChromeSlot,
    args: &[(&str, String)],
) {
    if !out.is_empty() {
        out.push(',');
    }
    let rendered: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
        .collect();
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
        json_escape(name),
        json_escape(cat),
        slot.ts,
        slot.dur,
        slot.pid,
        slot.tid,
        rendered.join(",")
    );
}

/// Render write-path spans and per-query traces as one Chrome trace-event
/// JSON document, loadable in `chrome://tracing` or Perfetto.
///
/// Spans keep their real timeline (microsecond offsets from the
/// collector's epoch) on the `pid` lane of their [`crate::span::TraceKind`]
/// family, each carrying its `trace_id` so one commit's WAL append, fsync,
/// engine apply, and cache epoch bump line up as a tree. Query traces —
/// which record stage *durations*, not absolute starts — are synthesized
/// onto the query lane one `tid` per query (its ring `seq`), stages laid
/// out back-to-back from ts 0 and per-shard scatter sections alongside, so
/// both kinds of evidence land in a single viewer-compatible file.
pub fn to_chrome_trace_json(spans: &[SpanRecord], traces: &[QueryTrace]) -> String {
    let mut events = String::new();
    // Process-name metadata rows, one per lane.
    for kind in [
        crate::span::TraceKind::Commit,
        crate::span::TraceKind::Query,
        crate::span::TraceKind::Replica,
    ] {
        if !events.is_empty() {
            events.push(',');
        }
        let _ = write!(
            events,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            kind.pid(),
            kind.lane()
        );
    }
    for s in spans {
        let mut args: Vec<(&str, String)> = vec![("trace_id", s.trace_id.to_string())];
        for (k, v) in s.args.iter().flatten() {
            args.push((k, v.to_string()));
        }
        chrome_event(
            &mut events,
            s.name,
            s.kind.lane(),
            ChromeSlot {
                ts: s.start_us,
                dur: s.dur_us,
                pid: s.kind.pid(),
                tid: s.tid,
            },
            &args,
        );
    }
    let query_pid = crate::span::TraceKind::Query.pid();
    for t in traces {
        let tid = t.seq;
        let root_args: Vec<(&str, String)> = vec![
            ("seq", t.seq.to_string()),
            ("ok", t.ok.to_string()),
            ("forward_cache_hit", t.forward_cache_hit.to_string()),
        ];
        chrome_event(
            &mut events,
            &format!("query: {}", t.query),
            "query",
            ChromeSlot {
                ts: 0,
                dur: t.total_us,
                pid: query_pid,
                tid,
            },
            &root_args,
        );
        let mut ts = 0u64;
        for (name, dur) in [
            ("forward", t.forward_us),
            ("backward", t.backward_us),
            ("assemble", t.assemble_us),
        ] {
            chrome_event(
                &mut events,
                name,
                "stage",
                ChromeSlot {
                    ts,
                    dur,
                    pid: query_pid,
                    tid,
                },
                &[],
            );
            ts = ts.saturating_add(dur);
        }
        let mut scatter_ts = 0u64;
        for &(shard, us) in &t.shard_scatter_us {
            chrome_event(
                &mut events,
                &format!("scatter shard {shard}"),
                "scatter",
                ChromeSlot {
                    ts: scatter_ts,
                    dur: us,
                    pid: query_pid,
                    tid,
                },
                &[("shard", shard.to_string())],
            );
            scatter_ts = scatter_ts.saturating_add(us);
        }
    }
    format!("{{\"traceEvents\":[{events}],\"displayTimeUnit\":\"ms\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("quest_test_queries_total").add(12);
        r.gauge_with("quest_test_lag", &[("replica", "a")]).set(3);
        r.gauge_with("quest_test_lag", &[("replica", "b")]).set(-1);
        let h = r.histogram("quest_test_latency_ns");
        for v in [100, 900, 5_000, 5_000, 120_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn prometheus_roundtrips_through_the_strict_parser() {
        let text = to_prometheus_text(&sample_registry().snapshot());
        let samples = parse_prometheus_text(&text).expect("exposition parses");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .value
        };
        assert_eq!(get("quest_test_queries_total"), 12.0);
        assert_eq!(get("quest_test_latency_ns_count"), 5.0);
        assert_eq!(get("quest_test_latency_ns_sum"), 131_000.0);
        let lag: Vec<&ParsedSample> = samples
            .iter()
            .filter(|s| s.name == "quest_test_lag")
            .collect();
        assert_eq!(lag.len(), 2);
        assert!(lag
            .iter()
            .any(|s| s.labels.contains("replica=\"b\"") && s.value == -1.0));
        // Cumulative bucket counts end at the +Inf bucket == count.
        let inf = samples
            .iter()
            .find(|s| s.name == "quest_test_latency_ns_bucket" && s.labels.contains("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 5.0);
    }

    #[test]
    fn parser_rejects_undeclared_and_malformed_lines() {
        assert!(parse_prometheus_text("orphan_metric 1").is_err());
        assert!(parse_prometheus_text("# TYPE x counter\nx one").is_err());
        assert!(parse_prometheus_text("# TYPE x counter\nx{a=\"b\" 1").is_err());
        assert!(parse_prometheus_text("# TYPE x wibble\nx 1").is_err());
        assert!(parse_prometheus_text("# TYPE x counter\nx 1\n\n# comment\n").is_ok());
    }

    #[test]
    fn help_lines_render_and_parse() {
        let r = sample_registry();
        r.describe("quest_test_queries_total", "Total queries served.");
        let text = to_prometheus_text(&r.snapshot());
        assert!(text.contains("# HELP quest_test_queries_total Total queries served.\n"));
        // Families without explicit help still get a HELP line.
        assert!(text.contains("# HELP quest_test_lag QUEST metric quest_test_lag.\n"));
        assert!(parse_prometheus_text(&text).is_ok());
        assert!(parse_prometheus_text("# HELP 9bad x\n").is_err());
    }

    #[test]
    fn adversarial_label_values_escape_and_round_trip() {
        let r = MetricsRegistry::new();
        let hostile = "a\"b\\c\nd,e}f g";
        r.gauge_with("quest_test_host", &[("path", hostile)]).set(4);
        let text = to_prometheus_text(&r.snapshot());
        assert_eq!(text.lines().count(), 3, "newline in value must be escaped");
        let samples = parse_prometheus_text(&text).expect("escaped exposition parses");
        let sample = samples
            .iter()
            .find(|s| s.name == "quest_test_host")
            .unwrap();
        let pairs = sample.label_pairs().expect("label block decodes");
        assert_eq!(pairs, vec![("path".to_string(), hostile.to_string())]);
        assert_eq!(sample.value, 4.0);
    }

    #[test]
    fn label_pairs_rejects_malformed_blocks() {
        let sample = |labels: &str| ParsedSample {
            name: "x".into(),
            labels: labels.into(),
            value: 0.0,
        };
        assert_eq!(sample("").label_pairs(), Ok(vec![]));
        assert!(sample("a=\"b\",c=\"d\"").label_pairs().is_ok());
        assert!(sample("a=b").label_pairs().is_err());
        assert!(sample("a=\"b").label_pairs().is_err());
        assert!(sample("a=\"b\\x\"").label_pairs().is_err());
        assert!(sample("a=\"b\"c=\"d\"").label_pairs().is_err());
    }

    #[test]
    fn chrome_trace_renders_spans_and_traces() {
        use crate::span::{SpanCollector, TraceKind};
        use crate::trace::QueryTrace;
        let c = SpanCollector::new(8);
        let ctx = c.ctx(TraceKind::Commit);
        c.record_with(ctx, "wal_append", c.start(), [Some(("records", 2)), None]);
        let trace = QueryTrace {
            seq: 5,
            query: "movies with \"quotes\"".into(),
            ok: true,
            total_us: 100,
            forward_us: 60,
            backward_us: 30,
            assemble_us: 10,
            shard_scatter_us: vec![(0, 40), (1, 20)],
            ..QueryTrace::default()
        };
        let json = to_chrome_trace_json(&c.recent(), &[trace]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"name\":\"wal_append\""));
        assert!(json.contains(&format!("\"trace_id\":{}", ctx.id)));
        assert!(json.contains("\"records\":2"));
        assert!(json.contains("movies with \\\"quotes\\\""));
        assert!(json.contains("\"name\":\"scatter shard 1\""));
        assert!(json.contains("\"name\":\"process_name\""));
        // Structurally valid: every brace/bracket balances outside strings.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for ch in json.chars() {
            match (in_str, esc, ch) {
                (true, true, _) => esc = false,
                (true, false, '\\') => esc = true,
                (true, false, '"') => in_str = false,
                (true, false, _) => {}
                (false, _, '"') => in_str = true,
                (false, _, '{' | '[') => depth += 1,
                (false, _, '}' | ']') => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn json_snapshot_has_expected_shape() {
        let json = to_json(&sample_registry().snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"quest_test_queries_total\":12"));
        assert!(json.contains("\"quest_test_lag{replica=\\\"a\\\"}\":3"));
        assert!(json.contains("\"count\":5"));
        assert!(json.contains("\"buckets\":[["));
    }
}
