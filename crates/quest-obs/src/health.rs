//! Declarative SLO specs evaluated into a [`HealthReport`].
//!
//! An [`SloSpec`] states bounds — p99 latency, error rate, replica lag —
//! and [`SloSpec::evaluate`] grades a set of windowed observations
//! ([`HealthInputs`]) against them: within bound is [`Healthy`], over
//! bound is [`Degraded`], and over bound by
//! [`SloSpec::critical_factor`]× is [`Critical`], each violation carrying
//! a human-readable reason. Missing observations (no traffic in the
//! window, no replicas) never violate — absence of evidence is not an
//! outage.
//!
//! Health monitoring is **strictly observational**: nothing in this module
//! (or in the layers that surface a report through `ServeStats` or the
//! topology reports) feeds back into routing, admission, or any serving
//! decision. The serving bit-identity suites pin that: results are
//! byte-identical with monitoring on and off.
//!
//! [`Healthy`]: HealthStatus::Healthy
//! [`Degraded`]: HealthStatus::Degraded
//! [`Critical`]: HealthStatus::Critical

/// Graded service health, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthStatus {
    /// Every bound holds.
    #[default]
    Healthy,
    /// At least one bound is exceeded, none critically.
    Degraded,
    /// At least one bound is exceeded by the critical factor (or a hard
    /// failure — a fenced shard, a poisoned WAL — was reported).
    Critical,
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Critical => "critical",
        })
    }
}

/// A declarative SLO: bounds are opt-in (`None` never violates).
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Upper bound on windowed p99 latency, microseconds.
    pub max_p99_us: Option<u64>,
    /// Upper bound on the windowed error rate (errors per query, 0..=1).
    pub max_error_rate: Option<f64>,
    /// Upper bound on replica lag (LSNs behind the primary) — or, for a
    /// sharded gateway, on the commit skew between shards.
    pub max_lag: Option<u64>,
    /// Exceeding a bound by this factor grades [`HealthStatus::Critical`]
    /// instead of [`HealthStatus::Degraded`].
    pub critical_factor: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            max_p99_us: None,
            max_error_rate: None,
            max_lag: None,
            critical_factor: 2.0,
        }
    }
}

/// Windowed observations an [`SloSpec`] grades. `None` means "no
/// evidence" (empty window, unreplicated deployment) and never violates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HealthInputs {
    /// Windowed p99 latency, microseconds.
    pub p99_us: Option<u64>,
    /// Windowed error rate (errors per query).
    pub error_rate: Option<f64>,
    /// Worst current replica lag (or inter-shard commit skew), LSNs.
    pub lag: Option<u64>,
}

/// The graded outcome: a status plus one reason per violated bound.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthReport {
    /// Worst grade across every violated bound.
    pub status: HealthStatus,
    /// One human-readable reason per violation (empty when healthy).
    pub reasons: Vec<String>,
}

impl HealthReport {
    /// A healthy report with no reasons.
    pub fn healthy() -> HealthReport {
        HealthReport::default()
    }

    /// Fold another violation in, keeping the worst status.
    pub fn push(&mut self, status: HealthStatus, reason: String) {
        self.status = self.status.max(status);
        self.reasons.push(reason);
    }

    /// Fold a whole report in (worst status wins, reasons concatenate).
    pub fn merge(&mut self, other: &HealthReport) {
        self.status = self.status.max(other.status);
        self.reasons.extend(other.reasons.iter().cloned());
    }
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.status)?;
        if !self.reasons.is_empty() {
            write!(f, " ({})", self.reasons.join("; "))?;
        }
        Ok(())
    }
}

impl SloSpec {
    fn grade(&self, observed: f64, bound: f64) -> Option<HealthStatus> {
        if observed <= bound {
            return None;
        }
        Some(if observed >= bound * self.critical_factor {
            HealthStatus::Critical
        } else {
            HealthStatus::Degraded
        })
    }

    /// Grade a set of windowed observations against this spec.
    pub fn evaluate(&self, inputs: &HealthInputs) -> HealthReport {
        let mut report = HealthReport::healthy();
        if let (Some(p99), Some(bound)) = (inputs.p99_us, self.max_p99_us) {
            if let Some(status) = self.grade(p99 as f64, bound as f64) {
                report.push(status, format!("p99 {p99}us exceeds SLO {bound}us"));
            }
        }
        if let (Some(rate), Some(bound)) = (inputs.error_rate, self.max_error_rate) {
            if let Some(status) = self.grade(rate, bound) {
                report.push(
                    status,
                    format!("error rate {rate:.4} exceeds SLO {bound:.4}"),
                );
            }
        }
        if let (Some(lag), Some(bound)) = (inputs.lag, self.max_lag) {
            if let Some(status) = self.grade(lag as f64, bound as f64) {
                report.push(status, format!("lag {lag} lsns exceeds SLO {bound}"));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec {
            max_p99_us: Some(1_000),
            max_error_rate: Some(0.01),
            max_lag: Some(10),
            critical_factor: 2.0,
        }
    }

    #[test]
    fn within_bounds_is_healthy() {
        let report = spec().evaluate(&HealthInputs {
            p99_us: Some(1_000),
            error_rate: Some(0.01),
            lag: Some(10),
        });
        assert_eq!(report.status, HealthStatus::Healthy);
        assert!(report.reasons.is_empty());
    }

    #[test]
    fn missing_evidence_never_violates() {
        let report = spec().evaluate(&HealthInputs::default());
        assert_eq!(report.status, HealthStatus::Healthy);
    }

    #[test]
    fn over_bound_degrades_and_critical_factor_escalates() {
        let degraded = spec().evaluate(&HealthInputs {
            p99_us: Some(1_500),
            ..HealthInputs::default()
        });
        assert_eq!(degraded.status, HealthStatus::Degraded);
        assert_eq!(degraded.reasons.len(), 1);

        let critical = spec().evaluate(&HealthInputs {
            p99_us: Some(2_000),
            error_rate: Some(0.015),
            ..HealthInputs::default()
        });
        assert_eq!(critical.status, HealthStatus::Critical, "worst grade wins");
        assert_eq!(critical.reasons.len(), 2);
    }

    #[test]
    fn unspecified_bounds_never_violate() {
        let spec = SloSpec::default();
        let report = spec.evaluate(&HealthInputs {
            p99_us: Some(u64::MAX),
            error_rate: Some(1.0),
            lag: Some(u64::MAX),
        });
        assert_eq!(report.status, HealthStatus::Healthy);
    }

    #[test]
    fn report_display_and_merge() {
        let mut a = HealthReport::healthy();
        assert_eq!(a.to_string(), "healthy");
        a.push(HealthStatus::Degraded, "slow".into());
        let mut b = HealthReport::healthy();
        b.push(HealthStatus::Critical, "fenced".into());
        a.merge(&b);
        assert_eq!(a.status, HealthStatus::Critical);
        assert_eq!(a.to_string(), "critical (slow; fenced)");
    }
}
