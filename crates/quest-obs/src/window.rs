//! Rolling-window aggregation over [`MetricsSnapshot`] deltas.
//!
//! Cumulative counters answer "how much ever"; operators ask "how much *per
//! second, right now*". A [`WindowAggregator`] retains the last
//! [`WindowConfig::window_ms`] worth of timestamped registry snapshots and
//! derives windowed readings from the delta between the oldest and newest
//! retained sample: counter deltas and per-second rates (QPS, error rate,
//! apply throughput), sliding percentiles from histogram *bucket* deltas
//! (the window's own latency distribution, not the lifetime one), and
//! per-gauge min/max across the retained instantaneous readings.
//!
//! **Counter-reset tolerance:** a process restart (or a fresh registry)
//! makes cumulative values go backwards. A counter whose newest reading is
//! below its oldest is treated as reset, and the newest reading *is* the
//! windowed delta; a histogram whose count or any bucket went backwards is
//! treated the same way. This is the standard scrape-side convention
//! (Prometheus `rate()` does likewise), so windowed numbers stay sane
//! across restarts instead of underflowing.
//!
//! Sampling is pull-driven — whoever scrapes ([`CachedEngine::stats`] in
//! the serving layer, or any caller with a snapshot) feeds
//! [`WindowAggregator::observe`]; nothing here spawns threads or reads
//! clocks behind the caller's back. `observe_at` takes an explicit
//! timestamp for deterministic tests.
//!
//! [`CachedEngine::stats`]: https://docs.rs/quest-serve

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::histogram::HistogramSnapshot;
use crate::metrics::MetricsSnapshot;

/// Window knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of the rolling window, milliseconds. Samples older than
    /// `newest - window_ms` are dropped.
    pub window_ms: u64,
    /// Hard cap on retained samples (oldest dropped first) so a caller
    /// scraping at high frequency cannot grow the aggregator unboundedly.
    pub max_samples: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window_ms: 10_000,
            max_samples: 128,
        }
    }
}

impl WindowConfig {
    /// Defaults overridden by `QUEST_OBS_WINDOW_SECS` (window width in
    /// seconds; unparsable values fall back silently).
    pub fn from_env() -> WindowConfig {
        let mut config = WindowConfig::default();
        if let Some(secs) = std::env::var("QUEST_OBS_WINDOW_SECS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            config.window_ms = secs.saturating_mul(1000);
        }
        config
    }
}

#[derive(Debug)]
struct WindowState {
    samples: VecDeque<(u64, MetricsSnapshot)>,
}

/// Windowed rates derived from the queries/errors counter pair — the
/// convenience readout the serving layer's health monitor consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRates {
    /// Actual span covered by the retained samples, seconds.
    pub window_secs: f64,
    /// Queries per second over the window.
    pub qps: f64,
    /// Errors per query over the window (0 when no queries ran).
    pub error_rate: f64,
}

/// A rolling-window aggregator over timestamped [`MetricsSnapshot`]s.
#[derive(Debug)]
pub struct WindowAggregator {
    config: WindowConfig,
    epoch: Instant,
    state: Mutex<WindowState>,
}

impl WindowAggregator {
    /// An aggregator with explicit knobs.
    pub fn new(config: WindowConfig) -> WindowAggregator {
        WindowAggregator {
            config,
            epoch: Instant::now(),
            state: Mutex::new(WindowState {
                samples: VecDeque::new(),
            }),
        }
    }

    /// An aggregator configured from the environment
    /// (`QUEST_OBS_WINDOW_SECS`).
    pub fn from_env() -> WindowAggregator {
        WindowAggregator::new(WindowConfig::from_env())
    }

    /// The knobs this aggregator runs with.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Feed one snapshot, timestamped off the aggregator's own monotonic
    /// clock.
    pub fn observe(&self, snapshot: &MetricsSnapshot) {
        let at_ms = u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
        self.observe_at(at_ms, snapshot);
    }

    /// Feed one snapshot at an explicit millisecond timestamp (must be
    /// non-decreasing; an out-of-order sample is dropped — wall clocks
    /// step, windows must not).
    pub fn observe_at(&self, at_ms: u64, snapshot: &MetricsSnapshot) {
        let mut state = self.lock();
        if let Some(&(newest, _)) = state.samples.back() {
            if at_ms < newest {
                return;
            }
        }
        state.samples.push_back((at_ms, snapshot.clone()));
        // Retain one baseline sample at or before the horizon so a full
        // window's delta always has its left endpoint. While the window
        // still reaches back past the epoch (`at_ms < window_ms`) there is
        // no horizon yet and nothing may be evicted — a saturated horizon
        // of 0 would count a sample at ms 0 as "at the horizon" and evict
        // the baseline out of a same-millisecond pair.
        if let Some(horizon) = at_ms.checked_sub(self.config.window_ms) {
            while state.samples.len() >= 2 && state.samples[1].0 <= horizon {
                state.samples.pop_front();
            }
        }
        while state.samples.len() > self.config.max_samples {
            state.samples.pop_front();
        }
    }

    /// Retained sample count.
    pub fn samples(&self) -> usize {
        self.lock().samples.len()
    }

    /// `(oldest, newest)` retained timestamps, when at least one sample is
    /// held.
    pub fn span_ms(&self) -> Option<(u64, u64)> {
        let state = self.lock();
        Some((state.samples.front()?.0, state.samples.back()?.0))
    }

    fn endpoints<T>(
        &self,
        read: impl Fn(&MetricsSnapshot) -> Option<T>,
    ) -> Option<(u64, T, u64, T)> {
        let state = self.lock();
        if state.samples.len() < 2 {
            return None;
        }
        let (t0, oldest) = state.samples.front()?;
        let (t1, newest) = state.samples.back()?;
        Some((*t0, read(oldest)?, *t1, read(newest)?))
    }

    /// Windowed counter delta (newest − oldest), reset-tolerant: a newest
    /// reading below the oldest means the counter restarted, and the
    /// newest reading is the delta. `None` with fewer than two samples or
    /// when the counter is absent.
    pub fn delta_counter(&self, name: &str) -> Option<u64> {
        let (_, a, _, b) = self.endpoints(|s| s.counter(name))?;
        Some(if b < a { b } else { b - a })
    }

    /// Windowed per-second rate of a counter. `None` with fewer than two
    /// samples or a zero-width window.
    pub fn rate_per_sec(&self, name: &str) -> Option<f64> {
        let (t0, a, t1, b) = self.endpoints(|s| s.counter(name))?;
        if t1 == t0 {
            return None;
        }
        let delta = if b < a { b } else { b - a };
        Some(delta as f64 / ((t1 - t0) as f64 / 1000.0))
    }

    /// The window's own histogram: newest − oldest, bucket-wise. A count
    /// or bucket that went backwards marks a reset, and the newest
    /// snapshot is returned whole. `max` is the lifetime max (the
    /// histogram does not retain per-window maxima). `None` with fewer
    /// than two samples or when the histogram is absent.
    pub fn histogram_window(&self, name: &str) -> Option<HistogramSnapshot> {
        let (_, a, _, b) = self.endpoints(|s| s.histogram(name).cloned())?;
        let reset = b.count < a.count || b.buckets.iter().zip(&a.buckets).any(|(bn, an)| bn < an);
        if reset {
            return Some(b);
        }
        let mut delta = b.clone();
        for (slot, n) in delta.buckets.iter_mut().zip(&a.buckets) {
            *slot -= n;
        }
        delta.count -= a.count;
        delta.sum = delta.sum.wrapping_sub(a.sum);
        Some(delta)
    }

    /// Sliding exact-bound percentile over the window's histogram delta.
    pub fn percentile(&self, name: &str, p: f64) -> Option<u64> {
        Some(self.histogram_window(name)?.percentile(p))
    }

    /// `(min, max)` of a gauge's instantaneous readings across every
    /// retained sample. `None` when the gauge appears in no sample.
    pub fn gauge_extremes(&self, name: &str) -> Option<(i64, i64)> {
        let state = self.lock();
        let mut extremes: Option<(i64, i64)> = None;
        for (_, snap) in &state.samples {
            if let Some(v) = snap.gauge(name) {
                extremes = Some(match extremes {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        extremes
    }

    /// QPS and error rate from a queries/errors counter pair.
    pub fn query_rates(&self, queries: &str, errors: &str) -> Option<WindowRates> {
        let (t0, q0, t1, q1) = self.endpoints(|s| s.counter(queries))?;
        if t1 == t0 {
            return None;
        }
        let dq = if q1 < q0 { q1 } else { q1 - q0 };
        let de = self.delta_counter(errors).unwrap_or(0);
        let window_secs = (t1 - t0) as f64 / 1000.0;
        Some(WindowRates {
            window_secs,
            qps: dq as f64 / window_secs,
            error_rate: if dq == 0 { 0.0 } else { de as f64 / dq as f64 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn rates_and_deltas_over_a_window() {
        let r = MetricsRegistry::new();
        let q = r.counter("q");
        let e = r.counter("e");
        let w = WindowAggregator::new(WindowConfig {
            window_ms: 10_000,
            max_samples: 16,
        });
        w.observe_at(0, &r.snapshot());
        q.add(100);
        e.add(5);
        w.observe_at(2_000, &r.snapshot());
        assert_eq!(w.delta_counter("q"), Some(100));
        assert_eq!(w.rate_per_sec("q"), Some(50.0));
        let rates = w.query_rates("q", "e").unwrap();
        assert_eq!(rates.qps, 50.0);
        assert_eq!(rates.error_rate, 0.05);
        assert_eq!(rates.window_secs, 2.0);
    }

    #[test]
    fn empty_and_single_sample_windows_read_none() {
        let w = WindowAggregator::new(WindowConfig::default());
        assert_eq!(w.delta_counter("q"), None);
        assert_eq!(w.rate_per_sec("q"), None);
        assert_eq!(w.percentile("h", 99.0), None);
        assert_eq!(w.gauge_extremes("g"), None);
        let r = MetricsRegistry::new();
        r.counter("q").add(3);
        w.observe_at(0, &r.snapshot());
        assert_eq!(w.delta_counter("q"), None, "one sample has no baseline");
    }

    #[test]
    fn counter_reset_uses_newest_as_delta() {
        let old = MetricsRegistry::new();
        old.counter("q").add(1_000);
        let fresh = MetricsRegistry::new();
        fresh.counter("q").add(7);
        let w = WindowAggregator::new(WindowConfig::default());
        w.observe_at(0, &old.snapshot());
        w.observe_at(1_000, &fresh.snapshot());
        assert_eq!(w.delta_counter("q"), Some(7));
        assert_eq!(w.rate_per_sec("q"), Some(7.0));
    }

    #[test]
    fn window_percentile_sees_only_the_window() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for _ in 0..100 {
            h.record(100); // old fast traffic
        }
        let w = WindowAggregator::new(WindowConfig::default());
        w.observe_at(0, &r.snapshot());
        for _ in 0..10 {
            h.record(1_000_000); // the window's slow traffic
        }
        w.observe_at(1_000, &r.snapshot());
        let lifetime = r.snapshot().histogram("lat").unwrap().percentile(50.0);
        let windowed = w.percentile("lat", 50.0).unwrap();
        assert!(lifetime <= 127, "lifetime p50 dominated by fast traffic");
        assert!(windowed >= 1_000_000, "window p50 sees only slow traffic");
        assert_eq!(w.histogram_window("lat").unwrap().count, 10);
    }

    #[test]
    fn old_samples_fall_off_and_out_of_order_is_dropped() {
        let r = MetricsRegistry::new();
        let q = r.counter("q");
        let w = WindowAggregator::new(WindowConfig {
            window_ms: 1_000,
            max_samples: 16,
        });
        w.observe_at(0, &r.snapshot());
        q.add(10);
        w.observe_at(500, &r.snapshot());
        q.add(10);
        // Evicts t=0; t=500 survives as the baseline at the horizon.
        w.observe_at(2_000, &r.snapshot());
        assert_eq!(w.samples(), 2);
        assert_eq!(w.delta_counter("q"), Some(10));
        w.observe_at(1_999, &r.snapshot()); // out of order: dropped
        assert_eq!(w.samples(), 2);
    }

    #[test]
    fn same_millisecond_pair_at_the_epoch_keeps_its_baseline() {
        // Two scrapes inside the first millisecond of the aggregator's
        // life: before the window has elapsed there is no horizon, so the
        // seed sample must survive as the delta's left endpoint (a
        // saturated horizon of 0 used to evict it).
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        let w = WindowAggregator::new(WindowConfig::default());
        w.observe_at(0, &r.snapshot());
        for _ in 0..10 {
            h.record(50_000);
        }
        w.observe_at(0, &r.snapshot());
        assert_eq!(w.samples(), 2);
        assert_eq!(w.histogram_window("lat").unwrap().count, 10);
        assert!(w.percentile("lat", 99.0).unwrap() >= 50_000);
    }

    #[test]
    fn gauge_extremes_cover_every_retained_sample() {
        let r = MetricsRegistry::new();
        let g = r.gauge("depth");
        let w = WindowAggregator::new(WindowConfig::default());
        for (t, v) in [(0, 2), (100, 9), (200, -1), (300, 4)] {
            g.set(v);
            w.observe_at(t, &r.snapshot());
        }
        assert_eq!(w.gauge_extremes("depth"), Some((-1, 9)));
    }
}
