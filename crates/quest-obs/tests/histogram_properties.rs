//! Property suite for the histogram math (ISSUE 8 satellite): recorded
//! values' percentiles stay within their bucket bounds, merging two
//! histograms is bit-identical to recording the union, and the top bucket
//! saturates instead of losing samples.

use proptest::prelude::*;
use quest_obs::{bucket_index, bucket_lower_bound, bucket_upper_bound, MetricsRegistry, BUCKETS};

/// Values spanning the whole bucket range: small exacts, mid-range
/// latencies, and a tail that reaches the saturating top bucket.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,
        16u64..100_000,
        (0u32..64).prop_map(|shift| 1u64 << shift),
        (1u64 << 61)..u64::MAX,
    ]
}

fn record_all(values: &[u64]) -> quest_obs::HistogramSnapshot {
    let registry = MetricsRegistry::new();
    let h = registry.histogram("h");
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The exact rank-`r` order statistic (1-based) of the sorted values.
fn exact_rank(values: &[u64], p: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentiles_bound_the_exact_order_statistic(
        values in proptest::collection::vec(value_strategy(), 1..200),
    ) {
        let snap = record_all(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().copied().fold(0u64, u64::wrapping_add));
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
        for p in [1.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let exact = exact_rank(&values, p);
            let bound = snap.percentile(p);
            // The readout is the inclusive upper bound of the exact
            // value's bucket (or the exact max in the saturating top), so
            // the exact order statistic can never exceed it...
            prop_assert!(
                exact <= bound,
                "p{p}: exact {exact} above reported bound {bound}"
            );
            // ...and stays in the exact value's own bucket — the report is
            // at most one power-of-two bound away from the true value.
            prop_assert_eq!(
                bucket_index(bound.min(snap.max)),
                bucket_index(exact),
                "p{p}: reported bound {bound} left the exact value's bucket ({exact})"
            );
        }
    }

    #[test]
    fn merge_equals_recording_the_union(
        a in proptest::collection::vec(value_strategy(), 0..120),
        b in proptest::collection::vec(value_strategy(), 0..120),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let mut union = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(merged, record_all(&union));
    }

    #[test]
    fn saturation_keeps_every_top_range_sample(
        values in proptest::collection::vec((1u64 << 62)..u64::MAX, 1..40),
    ) {
        let snap = record_all(&values);
        prop_assert_eq!(snap.buckets[BUCKETS - 1], values.len() as u64);
        prop_assert_eq!(snap.count, values.len() as u64);
        // The saturating bucket reports the exact max, not u64::MAX.
        prop_assert_eq!(snap.percentile(99.0), *values.iter().max().unwrap());
    }
}

#[test]
fn bucket_bounds_are_inverses_of_bucket_index() {
    for i in 0..BUCKETS {
        assert_eq!(bucket_index(bucket_lower_bound(i)), i);
        assert_eq!(bucket_index(bucket_upper_bound(i)), i);
    }
}
