//! Property suite for the window aggregator (ISSUE 9 satellite): windowed
//! counter deltas, per-second rates, and sliding histogram percentiles
//! recomputed brute-force from the raw event stream, plus counter-reset
//! and empty-window edge cases.

use proptest::prelude::*;
use quest_obs::{MetricsRegistry, WindowAggregator, WindowConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn windowed_math_matches_brute_force(
        batches in proptest::collection::vec(
            (1u64..400, 0u64..50, 1u64..1_000_000, 0usize..6),
            2..12,
        ),
        window_ms in 200u64..2_000,
    ) {
        let r = MetricsRegistry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        let w = WindowAggregator::new(WindowConfig {
            window_ms,
            max_samples: 64,
        });
        let mut t = 0u64;
        let mut events: Vec<(u64, u64, u64, usize)> = Vec::new();
        w.observe_at(0, &r.snapshot());
        for &(dt, inc, value, reps) in &batches {
            t += dt;
            c.add(inc);
            for _ in 0..reps {
                h.record(value);
            }
            events.push((t, inc, value, reps));
            w.observe_at(t, &r.snapshot());
        }
        let (t0, t1) = w.span_ms().expect("samples retained");
        prop_assert_eq!(t1, t);
        let windowed = |e: &&(u64, u64, u64, usize)| e.0 > t0 && e.0 <= t1;

        // Counter delta and rate: everything recorded strictly after the
        // baseline sample.
        let expect_delta: u64 = events.iter().filter(windowed).map(|e| e.1).sum();
        prop_assert_eq!(w.delta_counter("c"), Some(expect_delta));
        let rate = w.rate_per_sec("c").expect("two samples");
        let expect_rate = expect_delta as f64 / ((t1 - t0) as f64 / 1000.0);
        prop_assert!((rate - expect_rate).abs() < 1e-9);

        // Histogram window: bit-identical to recording only the windowed
        // values into a fresh histogram (max aside, which is lifetime).
        let reference = MetricsRegistry::new();
        let rh = reference.histogram("h");
        for e in events.iter().filter(windowed) {
            for _ in 0..e.3 {
                rh.record(e.2);
            }
        }
        let expected = rh.snapshot();
        let got = w.histogram_window("h").expect("two samples");
        prop_assert_eq!(got.buckets, expected.buckets);
        prop_assert_eq!(got.count, expected.count);
        prop_assert_eq!(got.sum, expected.sum);
        for p in [50.0, 95.0, 99.0] {
            prop_assert_eq!(w.percentile("h", p), Some(expected.percentile(p)));
        }
    }

    #[test]
    fn counter_reset_reads_newest_as_delta(
        before in 1u64..1_000_000,
        after in 0u64..1_000_000,
    ) {
        let old = MetricsRegistry::new();
        old.counter("c").add(before);
        let fresh = MetricsRegistry::new();
        fresh.counter("c").add(after);
        let w = WindowAggregator::new(WindowConfig::default());
        w.observe_at(0, &old.snapshot());
        w.observe_at(1_000, &fresh.snapshot());
        let expected = if after < before { after } else { after - before };
        prop_assert_eq!(w.delta_counter("c"), Some(expected));
    }

    #[test]
    fn histogram_reset_reads_newest_whole(
        old_values in proptest::collection::vec(1u64..1_000_000, 5..20),
        new_values in proptest::collection::vec(1u64..1_000_000, 1..5),
    ) {
        // Strictly fewer post-restart samples guarantees the count went
        // backwards, so the reset is detectable.
        let old = MetricsRegistry::new();
        for &v in &old_values {
            old.histogram("h").record(v);
        }
        let fresh = MetricsRegistry::new();
        for &v in &new_values {
            fresh.histogram("h").record(v);
        }
        let w = WindowAggregator::new(WindowConfig::default());
        w.observe_at(0, &old.snapshot());
        w.observe_at(1_000, &fresh.snapshot());
        let got = w.histogram_window("h").expect("two samples");
        let fresh_snap = fresh.snapshot();
        prop_assert_eq!(&got, fresh_snap.histogram("h").expect("present"));
    }

    #[test]
    fn gauge_extremes_match_brute_force(
        values in proptest::collection::vec(-100i64..100, 1..20),
    ) {
        let r = MetricsRegistry::new();
        let g = r.gauge("g");
        let w = WindowAggregator::new(WindowConfig {
            window_ms: u64::MAX,
            max_samples: 64,
        });
        for (i, &v) in values.iter().enumerate() {
            g.set(v);
            w.observe_at(i as u64 * 10, &r.snapshot());
        }
        let lo = *values.iter().min().expect("non-empty");
        let hi = *values.iter().max().expect("non-empty");
        prop_assert_eq!(w.gauge_extremes("g"), Some((lo, hi)));
    }
}

#[test]
fn empty_and_single_sample_windows_have_no_readings() {
    let w = WindowAggregator::new(WindowConfig::default());
    assert_eq!(w.span_ms(), None);
    assert_eq!(w.delta_counter("c"), None);
    assert_eq!(w.rate_per_sec("c"), None);
    assert_eq!(w.percentile("h", 99.0), None);
    assert_eq!(w.gauge_extremes("g"), None);
    let r = MetricsRegistry::new();
    r.counter("c").add(5);
    w.observe_at(100, &r.snapshot());
    assert_eq!(w.delta_counter("c"), None, "one sample has no baseline");
    assert_eq!(w.rate_per_sec("c"), None);
}
