//! Round-trip property suite for the Prometheus exporter/parser pair
//! (ISSUE 9 satellite): adversarial label values — quotes, backslashes,
//! newlines, commas, braces — escape on the way out and decode losslessly
//! on the way back in, with `# HELP` lines accepted throughout.

use proptest::prelude::*;
use quest_obs::{parse_prometheus_text, to_prometheus_text, MetricsRegistry};

/// Label values over the characters that attack the exposition framing:
/// the escape triple (`"`, `\`, newline) plus the label-block punctuation
/// (`,`, `=`, `{`, `}`) and spaces.
fn hostile_value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9\"\\\\\n,={} ]{0,16}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counter_labels_round_trip(
        a in hostile_value(),
        b in hostile_value(),
        count in 0u64..1_000_000,
    ) {
        let r = MetricsRegistry::new();
        r.describe("quest_prop_series_total", "Adversarial series.");
        r.counter_with("quest_prop_series_total", &[("ka", &a), ("kb", &b)])
            .add(count);
        let text = to_prometheus_text(&r.snapshot());
        let samples = parse_prometheus_text(&text).expect("escaped exposition parses");
        let sample = samples
            .iter()
            .find(|s| s.name == "quest_prop_series_total")
            .expect("series present");
        prop_assert_eq!(sample.value, count as f64);
        let pairs = sample.label_pairs().expect("label block decodes");
        prop_assert_eq!(pairs, vec![("ka".to_string(), a), ("kb".to_string(), b)]);
    }

    #[test]
    fn histogram_labels_round_trip_with_le(
        q in hostile_value(),
        values in proptest::collection::vec(1u64..1_000_000, 1..20),
    ) {
        let r = MetricsRegistry::new();
        let h = r.histogram_with("quest_prop_lat_ns", &[("q", &q)]);
        for &v in &values {
            h.record(v);
        }
        let text = to_prometheus_text(&r.snapshot());
        let samples = parse_prometheus_text(&text).expect("escaped exposition parses");
        let count_sample = samples
            .iter()
            .find(|s| s.name == "quest_prop_lat_ns_count")
            .expect("_count present");
        prop_assert_eq!(count_sample.value, values.len() as f64);
        prop_assert_eq!(
            count_sample.label_pairs().expect("decodes"),
            vec![("q".to_string(), q.clone())]
        );
        // Bucket samples carry the synthetic `le` label alongside the
        // hostile one, and the cumulative +Inf bucket equals the count.
        let inf = samples
            .iter()
            .filter(|s| s.name == "quest_prop_lat_ns_bucket")
            .find(|s| {
                s.label_pairs()
                    .is_ok_and(|p| p.iter().any(|(k, v)| k == "le" && v == "+Inf"))
            })
            .expect("+Inf bucket present");
        prop_assert_eq!(inf.value, values.len() as f64);
        prop_assert!(inf
            .label_pairs()
            .expect("decodes")
            .contains(&("q".to_string(), q)));
    }
}
