//! Property tests for the retry/backoff schedule: deterministic per seed,
//! monotone in the exponential regime, and always bounded by the cap.

use std::time::Duration;

use proptest::prelude::*;
use quest_fault::RetryPolicy;

fn policy(retries: u32, base_ms: u64, cap_ms: u64, seed: u64) -> RetryPolicy {
    RetryPolicy {
        retries,
        base: Duration::from_millis(base_ms),
        cap: Duration::from_millis(cap_ms),
        jitter_seed: seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn schedule_is_deterministic_per_seed(
        retries in 0u32..10,
        base_ms in 1u64..50,
        cap_ms in 1u64..500,
        seed in any::<u64>(),
    ) {
        let p = policy(retries, base_ms, cap_ms, seed);
        prop_assert_eq!(p.schedule(), p.clone().schedule());
        prop_assert_eq!(p.schedule().len(), retries as usize);
        // A rebuilt policy with identical fields backs off identically.
        let q = policy(retries, base_ms, cap_ms, seed);
        prop_assert_eq!(p.schedule(), q.schedule());
    }

    #[test]
    fn every_delay_respects_the_cap(
        retries in 1u32..12,
        base_ms in 1u64..100,
        cap_ms in 1u64..200,
        seed in any::<u64>(),
    ) {
        let p = policy(retries, base_ms, cap_ms, seed);
        for (attempt, delay) in p.schedule().into_iter().enumerate() {
            prop_assert!(
                delay <= p.cap,
                "attempt {} delay {:?} exceeds cap {:?}",
                attempt,
                delay,
                p.cap
            );
        }
    }

    #[test]
    fn unjittered_schedule_is_pure_exponential(
        retries in 1u32..10,
        base_ms in 1u64..20,
        cap_ms in 1u64..1000,
    ) {
        let p = policy(retries, base_ms, cap_ms, 0);
        for (attempt, delay) in p.schedule().into_iter().enumerate() {
            let expect = Duration::from_millis(base_ms << attempt.min(20)).min(p.cap);
            prop_assert_eq!(delay, expect);
        }
    }

    #[test]
    fn different_seeds_eventually_diverge(seed in 1u64..u64::MAX) {
        let a = policy(6, 10, 10_000, seed);
        let b = policy(6, 10, 10_000, seed ^ 0xDEAD_BEEF);
        // With a huge cap and six attempts, identical schedules from
        // different seeds would mean the jitter stream ignores the seed.
        prop_assert_ne!(a.schedule(), b.schedule());
    }
}
