//! Fault plans and the process-global failpoint registry.
//!
//! A [`FaultPlan`] is a schedule: *the Nth time site S is reached, inject
//! fault kind K*. Plans are installed process-wide with [`install`]; code at
//! an injection seam calls [`fire`] with its site name and honours whatever
//! comes back. When no plan is armed, [`fire`] is a single relaxed atomic
//! load — the seams cost nothing in production.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock, PoisonError};
use std::time::Duration;

use crate::splitmix64;

/// Canonical injection-site names, one per seam in the service stack.
pub mod sites {
    /// `WalWriter::append_batch` — before the framed batch hits the file.
    pub const WAL_APPEND: &str = "wal.append";
    /// `WalWriter` fsync — policy-driven, explicit, and heal-time syncs.
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// `write_snapshot` — before the tmp file is created.
    pub const WAL_SNAPSHOT: &str = "wal.snapshot";
    /// `LogReader::poll` — the replica tail path.
    pub const WAL_READ: &str = "wal.read";
    /// `Replica::sync` — after records are consumed, before they are applied.
    pub const REPLICA_APPLY: &str = "replica.apply";
    /// `Replica` bootstrap from a published snapshot.
    pub const REPLICA_BOOTSTRAP: &str = "replica.bootstrap";
    /// `ShardedPrimary::commit` — the per-shard commit fan-out.
    pub const SHARD_COMMIT: &str = "shard.commit";
    /// The scatter-gather keyword probe (slow-IO only; never alters results).
    pub const SHARD_PROBE: &str = "shard.probe";

    /// Every site, for enumeration in docs and experiments.
    pub const ALL: &[&str] = &[
        WAL_APPEND,
        WAL_FSYNC,
        WAL_SNAPSHOT,
        WAL_READ,
        REPLICA_APPLY,
        REPLICA_BOOTSTRAP,
        SHARD_COMMIT,
        SHARD_PROBE,
    ];
}

/// What happens when an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The post-write durability barrier fails.
    FsyncError,
    /// Only a prefix of the framed batch reaches the file before the error.
    TornWrite,
    /// The append fails before any byte is written.
    AppendError,
    /// A consumer took the records but failed to apply them.
    ApplyError,
    /// The operation succeeds after an artificial stall.
    SlowIo,
}

impl FaultKind {
    /// Stable textual tag used by the plan syntax.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::FsyncError => "fsync_error",
            FaultKind::TornWrite => "torn_write",
            FaultKind::AppendError => "append_error",
            FaultKind::ApplyError => "apply_error",
            FaultKind::SlowIo => "slow_io",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "fsync_error" => FaultKind::FsyncError,
            "torn_write" => FaultKind::TornWrite,
            "append_error" => FaultKind::AppendError,
            "apply_error" => FaultKind::ApplyError,
            "slow_io" => FaultKind::SlowIo,
            _ => return None,
        })
    }
}

/// Whether a retry can be expected to succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transience {
    /// The fault clears on its own; retry with backoff.
    #[default]
    Transient,
    /// The fault persists; retrying is futile.
    Permanent,
}

/// One scheduled fault: the `hit`-th time `site` is reached, inject `kind`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Site name from [`sites`].
    pub site: String,
    /// 1-based occurrence count that triggers the fault.
    pub hit: u64,
    /// What to inject.
    pub kind: FaultKind,
    /// Transient (retryable) or permanent.
    pub transience: Transience,
}

impl fmt::Display for Injection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}={}", self.site, self.hit, self.kind.tag())?;
        if self.transience == Transience::Permanent {
            write!(f, "!")?;
        }
        Ok(())
    }
}

/// A deterministic schedule of injections.
///
/// The textual form is a comma-separated list of `site@hit=kind` entries,
/// with a trailing `!` marking a permanent fault:
/// `wal.fsync@2=fsync_error,replica.apply@1=apply_error!`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled injections, in no particular order.
    pub injections: Vec<Injection>,
}

impl FaultPlan {
    /// A plan with no injections; installing it disarms every failpoint.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Generate a seeded plan of `faults` transient injections.
    ///
    /// The generator draws sites and kinds from a fixed menu of heal-able
    /// seams and assigns strictly increasing hit numbers per site, so the
    /// same seed always yields the same schedule and no two injections
    /// collide on the same (site, hit) pair. Per-site hit counts stay small
    /// enough that a default [`crate::RetryPolicy`] outlasts them.
    pub fn generate(seed: u64, faults: usize) -> FaultPlan {
        const MENU: &[(&str, &[FaultKind])] = &[
            (
                sites::WAL_APPEND,
                &[FaultKind::TornWrite, FaultKind::AppendError],
            ),
            (sites::WAL_FSYNC, &[FaultKind::FsyncError]),
            (sites::WAL_SNAPSHOT, &[FaultKind::AppendError]),
            (sites::REPLICA_APPLY, &[FaultKind::ApplyError]),
            (sites::REPLICA_BOOTSTRAP, &[FaultKind::AppendError]),
            (
                sites::SHARD_COMMIT,
                &[FaultKind::AppendError, FaultKind::FsyncError],
            ),
        ];
        let mut state = seed ^ 0xC4A5_5EED_F417_0000;
        let mut next_hit: HashMap<&str, u64> = HashMap::new();
        let mut injections = Vec::with_capacity(faults);
        for _ in 0..faults {
            let (site, kinds) = MENU[(splitmix64(&mut state) % MENU.len() as u64) as usize];
            let hit = next_hit.entry(site).or_insert(0);
            *hit += 1 + splitmix64(&mut state) % 2;
            let kind = kinds[(splitmix64(&mut state) % kinds.len() as u64) as usize];
            injections.push(Injection {
                site: site.to_string(),
                hit: *hit,
                kind,
                transience: Transience::Transient,
            });
        }
        FaultPlan { injections }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inj) in self.injections.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{inj}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultPlan, String> {
        let mut injections = Vec::new();
        for entry in s.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (site_hit, kind_str) = entry
                .split_once('=')
                .ok_or_else(|| format!("missing `=` in fault entry `{entry}`"))?;
            let (site, hit_str) = site_hit
                .split_once('@')
                .ok_or_else(|| format!("missing `@` in fault entry `{entry}`"))?;
            if !sites::ALL.contains(&site) {
                return Err(format!("unknown fault site `{site}`"));
            }
            let hit: u64 = hit_str
                .parse()
                .map_err(|_| format!("bad hit count `{hit_str}` in `{entry}`"))?;
            if hit == 0 {
                return Err(format!("hit counts are 1-based; got 0 in `{entry}`"));
            }
            let (kind_str, transience) = match kind_str.strip_suffix('!') {
                Some(k) => (k, Transience::Permanent),
                None => (kind_str, Transience::Transient),
            };
            let kind = FaultKind::parse(kind_str)
                .ok_or_else(|| format!("unknown fault kind `{kind_str}` in `{entry}`"))?;
            injections.push(Injection {
                site: site.to_string(),
                hit,
                kind,
                transience,
            });
        }
        Ok(FaultPlan { injections })
    }
}

/// A fault handed back to a seam by [`fire`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The site that fired.
    pub site: String,
    /// What to inject.
    pub kind: FaultKind,
    /// Transient (retryable) or permanent.
    pub transience: Transience,
}

impl Fault {
    /// Materialise the fault as an `io::Error`.
    ///
    /// Transient faults use `ErrorKind::Interrupted` and permanent ones
    /// `ErrorKind::Other`, matching the `is_transient()` classification on
    /// the WAL/replica/shard error types.
    pub fn io_error(&self) -> std::io::Error {
        let kind = match self.transience {
            Transience::Transient => std::io::ErrorKind::Interrupted,
            Transience::Permanent => std::io::ErrorKind::Other,
        };
        std::io::Error::new(
            kind,
            format!("injected {} fault at {}", self.kind.tag(), self.site),
        )
    }

    /// For [`FaultKind::SlowIo`] faults, stall the caller briefly; a no-op
    /// for every other kind so seams can call it unconditionally.
    pub fn stall(&self) {
        if self.kind == FaultKind::SlowIo {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[derive(Debug, Default)]
struct PlanState {
    /// Scheduled injections paired with a consumed flag.
    injections: Vec<(Injection, bool)>,
    /// Per-site hit counters since the plan was installed.
    hits: HashMap<String, u64>,
    /// Injections consumed since process start (survives re-installs).
    consumed_total: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<PlanState> {
    static STATE: OnceLock<Mutex<PlanState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(PlanState::default()))
}

/// Install `plan` process-wide, resetting all hit counters.
pub fn install(plan: FaultPlan) {
    let mut s = state().lock().unwrap_or_else(PoisonError::into_inner);
    let armed = !plan.injections.is_empty();
    s.injections = plan.injections.into_iter().map(|i| (i, false)).collect();
    s.hits.clear();
    ARMED.store(armed, Ordering::Release);
}

/// Disarm every failpoint (equivalent to installing an empty plan).
pub fn clear() {
    install(FaultPlan::none());
}

/// Whether any plan is currently armed.
pub fn installed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Injections in the current plan that have not fired yet.
pub fn pending() -> usize {
    let s = state().lock().unwrap_or_else(PoisonError::into_inner);
    s.injections.iter().filter(|(_, used)| !used).count()
}

/// Injections consumed since process start (monotonic across re-installs).
pub fn consumed() -> u64 {
    let s = state().lock().unwrap_or_else(PoisonError::into_inner);
    s.consumed_total
}

/// Record that execution reached `site`; returns the fault to inject, if any.
///
/// When no plan is armed this is a single relaxed atomic load.
#[inline]
pub fn fire(site: &str) -> Option<Fault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    fire_armed(site)
}

#[cold]
fn fire_armed(site: &str) -> Option<Fault> {
    let mut s = state().lock().unwrap_or_else(PoisonError::into_inner);
    let hit = {
        let c = s.hits.entry(site.to_string()).or_insert(0);
        *c += 1;
        *c
    };
    let mut fault = None;
    for (inj, used) in &mut s.injections {
        if !*used && inj.site == site && inj.hit == hit {
            *used = true;
            fault = Some(Fault {
                site: inj.site.clone(),
                kind: inj.kind,
                transience: inj.transience,
            });
            break;
        }
    }
    if fault.is_some() {
        s.consumed_total += 1;
    }
    drop(s);
    if let Some(f) = &fault {
        crate::count_injected(&f.site);
    }
    fault
}

/// Install a plan from the `QUEST_FAULT_PLAN` environment variable, once per
/// process. Called from cold constructor paths (e.g. `WalWriter::open`);
/// malformed plans are reported on stderr and ignored.
pub fn init_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let Ok(raw) = std::env::var("QUEST_FAULT_PLAN") else {
            return;
        };
        if raw.trim().is_empty() {
            return;
        }
        match raw.parse::<FaultPlan>() {
            Ok(plan) => install(plan),
            Err(e) => eprintln!("quest-fault: ignoring malformed QUEST_FAULT_PLAN: {e}"),
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The registry is process-global; serialise tests that install plans.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn parse_roundtrip() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let text = "wal.fsync@2=fsync_error,replica.apply@1=apply_error!";
        let plan: FaultPlan = text.parse().expect("parse");
        assert_eq!(plan.injections.len(), 2);
        assert_eq!(plan.injections[0].site, sites::WAL_FSYNC);
        assert_eq!(plan.injections[0].hit, 2);
        assert_eq!(plan.injections[0].transience, Transience::Transient);
        assert_eq!(plan.injections[1].transience, Transience::Permanent);
        assert_eq!(plan.to_string(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("nope@1=fsync_error".parse::<FaultPlan>().is_err());
        assert!("wal.fsync@0=fsync_error".parse::<FaultPlan>().is_err());
        assert!("wal.fsync@1=explode".parse::<FaultPlan>().is_err());
        assert!("wal.fsync=fsync_error".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn fire_consumes_scheduled_hit_only() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install("wal.append@2=torn_write".parse().unwrap());
        assert!(fire(sites::WAL_APPEND).is_none()); // hit 1
        let fault = fire(sites::WAL_APPEND).expect("hit 2 fires");
        assert_eq!(fault.kind, FaultKind::TornWrite);
        assert_eq!(fault.io_error().kind(), std::io::ErrorKind::Interrupted);
        assert!(fire(sites::WAL_APPEND).is_none()); // consumed
        assert_eq!(pending(), 0);
        clear();
        assert!(!installed());
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let a = FaultPlan::generate(42, 6);
        let b = FaultPlan::generate(42, 6);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::generate(43, 6));
        assert_eq!(a.injections.len(), 6);
        // Round-trips through the textual form.
        assert_eq!(a.to_string().parse::<FaultPlan>().unwrap(), a);
        // No duplicate (site, hit) pairs, and all transient.
        let mut seen = std::collections::HashSet::new();
        for inj in &a.injections {
            assert!(seen.insert((inj.site.clone(), inj.hit)));
            assert_eq!(inj.transience, Transience::Transient);
        }
    }
}
