//! Deterministic retry/backoff policies and injectable clocks.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::splitmix64;

/// A source of time that recovery loops sleep against.
///
/// Production code uses [`SystemClock`]; tests use [`ManualClock`] so backoff
/// never touches wall-clock time.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Monotonic time elapsed since the clock was created.
    fn now(&self) -> Duration;
    /// Block (or pretend to) for `d`.
    fn sleep(&self, d: Duration);
}

/// Wall-clock [`Clock`] backed by `std::time::Instant`.
#[derive(Debug)]
pub struct SystemClock {
    start: std::time::Instant,
}

impl SystemClock {
    /// A clock starting now.
    pub fn new() -> SystemClock {
        SystemClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.start.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A virtual [`Clock`] that only moves when told to (or slept against).
///
/// `sleep` advances the clock instead of blocking, so retry loops driven by a
/// `ManualClock` complete instantly while still observing a consistent
/// timeline (quarantine probes see `now()` past their deadline).
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advance the clock by `d` without sleeping.
    pub fn advance(&self, d: Duration) {
        self.micros
            .fetch_add(d.as_micros() as u64, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_micros(self.micros.load(Ordering::Relaxed))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// Bounded exponential backoff with deterministic, seeded jitter.
///
/// Attempt `a` (0-based) waits `min(cap, base * 2^a)` scaled by a jitter
/// factor in `[0.75, 1.25]` drawn from `splitmix64(jitter_seed, a)`, then
/// clamped to `cap` again. The whole schedule is a pure function of the
/// policy, so two runs with the same seed back off identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry attempts before giving up (0 disables retries).
    pub retries: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Seed for the jitter stream; 0 disables jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            jitter_seed: 0x51EE_D0FF,
        }
    }
}

impl RetryPolicy {
    /// Build a policy from the environment, falling back to the defaults:
    /// `QUEST_FAULT_RETRIES`, `QUEST_FAULT_BACKOFF_BASE_MS`,
    /// `QUEST_FAULT_BACKOFF_CAP_MS`, `QUEST_FAULT_JITTER_SEED`.
    pub fn from_env() -> RetryPolicy {
        fn get<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let defaults = RetryPolicy::default();
        RetryPolicy {
            retries: get("QUEST_FAULT_RETRIES", defaults.retries),
            base: Duration::from_millis(get(
                "QUEST_FAULT_BACKOFF_BASE_MS",
                defaults.base.as_millis() as u64,
            )),
            cap: Duration::from_millis(get(
                "QUEST_FAULT_BACKOFF_CAP_MS",
                defaults.cap.as_millis() as u64,
            )),
            jitter_seed: get("QUEST_FAULT_JITTER_SEED", defaults.jitter_seed),
        }
    }

    /// The delay before retry attempt `attempt` (0-based). Always ≤ `cap`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        let exp = exp.min(self.cap);
        if self.jitter_seed == 0 {
            return exp;
        }
        let mut state = self
            .jitter_seed
            .wrapping_add((attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let draw = splitmix64(&mut state) % 501; // 0..=500
        let jittered = (exp.as_nanos() as u64).saturating_mul(750 + draw) / 1000;
        Duration::from_nanos(jittered).min(self.cap)
    }

    /// The full backoff schedule, one delay per allowed retry.
    pub fn schedule(&self) -> Vec<Duration> {
        (0..self.retries).map(|a| self.delay(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_sleep_advances() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.sleep(Duration::from_millis(5));
        clock.advance(Duration::from_millis(7));
        assert_eq!(clock.now(), Duration::from_millis(12));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            retries: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            jitter_seed: 0, // pure exponential
        };
        let schedule = policy.schedule();
        assert_eq!(schedule.len(), 8);
        assert_eq!(schedule[0], Duration::from_millis(1));
        assert_eq!(schedule[1], Duration::from_millis(2));
        assert_eq!(schedule[5], Duration::from_millis(20)); // capped at 32 → 20
        assert!(schedule.iter().all(|d| *d <= policy.cap));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.schedule(), policy.schedule());
        let other = RetryPolicy {
            jitter_seed: policy.jitter_seed + 1,
            ..policy.clone()
        };
        assert_ne!(policy.schedule(), other.schedule());
    }
}
