//! Deterministic failpoint injection and self-healing retry machinery.
//!
//! `quest-fault` is the chaos backbone of the QUEST service stack. It has two
//! halves:
//!
//! * **Failpoints** ([`plan`]): a process-global registry of named injection
//!   sites threaded through the WAL, replica, and shard layers. A
//!   [`FaultPlan`] — either parsed from `QUEST_FAULT_PLAN` or generated from a
//!   seed — schedules which site fails on which hit and how (fsync error,
//!   torn write, append error, apply error, slow IO). With no plan installed
//!   the hot path is a single relaxed atomic load, mirroring how `quest-obs`
//!   stays free when disabled.
//! * **Self-healing** ([`retry`]): a [`RetryPolicy`] with bounded,
//!   deterministic exponential backoff (seeded jitter) and an injectable
//!   [`Clock`] so recovery loops never touch wall-clock time in tests.
//!
//! Every injection, retry, heal, and escalation is counted in the global
//! `quest-obs` registry under the `quest_fault_*` names so chaos runs are
//! observable end to end.
//!
//! ```
//! use quest_fault::{FaultPlan, RetryPolicy};
//!
//! let plan: FaultPlan = "wal.fsync@1=fsync_error".parse().unwrap();
//! quest_fault::install(plan);
//! assert!(quest_fault::fire(quest_fault::sites::WAL_FSYNC).is_some());
//! assert!(quest_fault::fire(quest_fault::sites::WAL_FSYNC).is_none());
//! quest_fault::clear();
//!
//! let policy = RetryPolicy::default();
//! assert_eq!(policy.schedule(), policy.schedule()); // deterministic per seed
//! ```

pub mod plan;
pub mod retry;

pub use plan::{
    clear, consumed, fire, init_from_env, install, installed, pending, sites, Fault, FaultKind,
    FaultPlan, Injection, Transience,
};
pub use retry::{Clock, ManualClock, RetryPolicy, SystemClock};

/// Metric names exported to the global `quest-obs` registry.
pub mod names {
    /// Counter: faults injected by the registry (labelled per site).
    pub const INJECTED: &str = "quest_fault_injected_total";
    /// Counter: retry attempts made by self-healing loops.
    pub const RETRIES: &str = "quest_fault_retries_total";
    /// Counter: successful heals (labelled per component).
    pub const HEALS: &str = "quest_fault_heals_total";
    /// Counter: recoveries escalated to permanent failure.
    pub const ESCALATIONS: &str = "quest_fault_escalations_total";
    /// Gauge: components currently quarantined (labelled per component).
    pub const QUARANTINED: &str = "quest_fault_quarantined";
}

fn describe_all() {
    let reg = quest_obs::global();
    reg.describe(names::INJECTED, "Faults injected by the failpoint registry");
    reg.describe(names::RETRIES, "Retry attempts made by self-healing loops");
    reg.describe(names::HEALS, "Successful self-heals by component");
    reg.describe(
        names::ESCALATIONS,
        "Recoveries escalated to permanent failure",
    );
    reg.describe(names::QUARANTINED, "Components currently quarantined");
}

/// Count one injected fault at `site`.
pub(crate) fn count_injected(site: &str) {
    describe_all();
    let reg = quest_obs::global();
    reg.counter(names::INJECTED).inc();
    reg.counter_with(names::INJECTED, &[("site", site)]).inc();
}

/// Count one retry attempt made by a self-healing loop.
pub fn count_retry() {
    describe_all();
    quest_obs::global().counter(names::RETRIES).inc();
}

/// Count one successful heal of `component` (`"wal"`, `"replica"`, `"shard"`).
pub fn count_heal(component: &str) {
    describe_all();
    let reg = quest_obs::global();
    reg.counter(names::HEALS).inc();
    reg.counter_with(names::HEALS, &[("component", component)])
        .inc();
}

/// Count one escalation of `component` to permanent failure.
pub fn count_escalation(component: &str) {
    describe_all();
    let reg = quest_obs::global();
    reg.counter(names::ESCALATIONS).inc();
    reg.counter_with(names::ESCALATIONS, &[("component", component)])
        .inc();
}

/// Handle on the per-component quarantine gauge.
pub fn quarantined(component: &str) -> quest_obs::Gauge {
    describe_all();
    quest_obs::global().gauge_with(names::QUARANTINED, &[("component", component)])
}

/// SplitMix64 step shared by the plan generator and backoff jitter: a tiny,
/// seedable, allocation-free stream that keeps this crate zero-dependency.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
