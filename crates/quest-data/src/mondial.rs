//! Mondial-shaped dataset: "few instances but a very complex schema where
//! tables are connected through many paths" (paper §4). Fifteen tables of
//! geographic facts; row counts are small and bounded by the corpora, but
//! the join graph is dense (country is reachable from almost everywhere).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relstore::{Catalog, DataType, Database, Row, StoreError};

use crate::corpus::{CITIES, COUNTRIES, LANGUAGES, MOUNTAINS, ORGANIZATIONS, RELIGIONS, RIVERS};
use crate::workload::{GoldSpec, GoldTerm, WorkloadQuery};

/// Generation parameters (Mondial is small by nature; the seed only affects
/// numeric facts and cross-references).
#[derive(Debug, Clone)]
pub struct MondialScale {
    /// RNG seed.
    pub seed: u64,
}

impl Default for MondialScale {
    fn default() -> Self {
        MondialScale { seed: 42 }
    }
}

/// Build the Mondial-shaped schema (15 tables, 17 foreign keys).
pub fn schema() -> Result<Catalog, StoreError> {
    let mut c = Catalog::new();
    c.define_table("country")?
        .pk("code", DataType::Text)?
        .col("name", DataType::Text)?
        .col_opts("population", DataType::Int, true, false)?
        .col_opts("area", DataType::Float, true, false)?
        .finish();
    c.define_table("province")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .col_opts("country_code", DataType::Text, false, false)?
        .col_opts("population", DataType::Int, true, false)?
        .finish();
    c.define_table("city")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .col_opts("country_code", DataType::Text, false, false)?
        .col_opts("province_id", DataType::Int, true, false)?
        .col_opts("population", DataType::Int, true, false)?
        .finish();
    c.define_table("capital")?
        .pk("id", DataType::Int)?
        .col_opts("country_code", DataType::Text, false, false)?
        .col_opts("city_id", DataType::Int, false, false)?
        .finish();
    c.define_table("organization")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .col("abbreviation", DataType::Text)?
        .col_opts("established", DataType::Int, true, true)?
        .finish();
    c.define_table("is_member")?
        .pk("id", DataType::Int)?
        .col_opts("organization_id", DataType::Int, false, false)?
        .col_opts("country_code", DataType::Text, false, false)?
        .col("member_type", DataType::Text)?
        .finish();
    c.define_table("language")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .finish();
    c.define_table("spoken")?
        .pk("id", DataType::Int)?
        .col_opts("language_id", DataType::Int, false, false)?
        .col_opts("country_code", DataType::Text, false, false)?
        .col_opts("percentage", DataType::Float, true, false)?
        .finish();
    c.define_table("religion")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .finish();
    c.define_table("practiced")?
        .pk("id", DataType::Int)?
        .col_opts("religion_id", DataType::Int, false, false)?
        .col_opts("country_code", DataType::Text, false, false)?
        .col_opts("percentage", DataType::Float, true, false)?
        .finish();
    c.define_table("river")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .col_opts("length", DataType::Float, true, false)?
        .finish();
    c.define_table("flows_through")?
        .pk("id", DataType::Int)?
        .col_opts("river_id", DataType::Int, false, false)?
        .col_opts("country_code", DataType::Text, false, false)?
        .finish();
    c.define_table("mountain")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .col_opts("height", DataType::Float, true, false)?
        .finish();
    c.define_table("located_in")?
        .pk("id", DataType::Int)?
        .col_opts("mountain_id", DataType::Int, false, false)?
        .col_opts("country_code", DataType::Text, false, false)?
        .finish();
    c.define_table("borders")?
        .pk("id", DataType::Int)?
        .col_opts("country1", DataType::Text, false, false)?
        .col_opts("country2", DataType::Text, false, false)?
        .col_opts("length", DataType::Float, true, false)?
        .finish();

    c.add_foreign_key("province", "country_code", "country")?;
    c.add_foreign_key("city", "country_code", "country")?;
    c.add_foreign_key("city", "province_id", "province")?;
    c.add_foreign_key("capital", "country_code", "country")?;
    c.add_foreign_key("capital", "city_id", "city")?;
    c.add_foreign_key("is_member", "organization_id", "organization")?;
    c.add_foreign_key("is_member", "country_code", "country")?;
    c.add_foreign_key("spoken", "language_id", "language")?;
    c.add_foreign_key("spoken", "country_code", "country")?;
    c.add_foreign_key("practiced", "religion_id", "religion")?;
    c.add_foreign_key("practiced", "country_code", "country")?;
    c.add_foreign_key("flows_through", "river_id", "river")?;
    c.add_foreign_key("flows_through", "country_code", "country")?;
    c.add_foreign_key("located_in", "mountain_id", "mountain")?;
    c.add_foreign_key("located_in", "country_code", "country")?;
    c.add_foreign_key("borders", "country1", "country")?;
    c.add_foreign_key("borders", "country2", "country")?;
    Ok(c)
}

/// Country code: first two letters, uppercased, disambiguated by index.
fn code(name: &str, i: usize) -> String {
    let base: String = name.chars().take(2).collect::<String>().to_uppercase();
    format!("{base}{i:02}")
}

/// Generate the database.
pub fn generate(scale: &MondialScale) -> Result<Database, StoreError> {
    let mut db = Database::new(schema()?)?;
    let mut rng = SmallRng::seed_from_u64(scale.seed);

    let codes: Vec<String> = COUNTRIES
        .iter()
        .enumerate()
        .map(|(i, n)| code(n, i))
        .collect();

    for (i, name) in COUNTRIES.iter().enumerate() {
        let pop = 1_000_000 + rng.random_range(0..80_000_000) as i64;
        let area = 10_000.0 + rng.random_range(0..500_000) as f64;
        db.insert(
            "country",
            Row::new(vec![
                codes[i].clone().into(),
                (*name).into(),
                pop.into(),
                area.into(),
            ]),
        )?;
    }

    // Two provinces per country.
    let mut prov_id: i64 = 0;
    let mut provinces_of: Vec<Vec<i64>> = vec![Vec::new(); COUNTRIES.len()];
    for (ci, name) in COUNTRIES.iter().enumerate() {
        for p in 0..2 {
            let pname = format!("{name} Province {}", p + 1);
            let pop = 100_000 + rng.random_range(0..5_000_000) as i64;
            db.insert(
                "province",
                Row::new(vec![
                    prov_id.into(),
                    pname.into(),
                    codes[ci].clone().into(),
                    pop.into(),
                ]),
            )?;
            provinces_of[ci].push(prov_id);
            prov_id += 1;
        }
    }

    // Cities: distribute the corpus over countries round-robin; city 0 of
    // each country becomes its capital.
    let mut first_city_of: Vec<Option<i64>> = vec![None; COUNTRIES.len()];
    for (i, cname) in CITIES.iter().enumerate() {
        let city_id = i as i64;
        let ci = i % COUNTRIES.len();
        let prov = provinces_of[ci][i % 2];
        let pop = 50_000 + rng.random_range(0..3_000_000) as i64;
        db.insert(
            "city",
            Row::new(vec![
                city_id.into(),
                (*cname).into(),
                codes[ci].clone().into(),
                prov.into(),
                pop.into(),
            ]),
        )?;
        if first_city_of[ci].is_none() {
            first_city_of[ci] = Some(city_id);
        }
    }
    let mut cap_id: i64 = 0;
    for (ci, city) in first_city_of.iter().enumerate() {
        if let Some(city) = city {
            db.insert(
                "capital",
                Row::new(vec![
                    cap_id.into(),
                    codes[ci].clone().into(),
                    (*city).into(),
                ]),
            )?;
            cap_id += 1;
        }
    }

    // Organizations and memberships.
    for (i, (name, abbr)) in ORGANIZATIONS.iter().enumerate() {
        let est = 1900 + rng.random_range(0..99) as i64;
        db.insert(
            "organization",
            Row::new(vec![
                (i as i64).into(),
                (*name).into(),
                (*abbr).into(),
                est.into(),
            ]),
        )?;
    }
    let mut mem_id: i64 = 0;
    // Workload anchor: Italy (index 0) is a NATO (index 2) member.
    db.insert(
        "is_member",
        Row::new(vec![
            mem_id.into(),
            2.into(),
            codes[0].clone().into(),
            "member".into(),
        ]),
    )?;
    mem_id += 1;
    for (oi, _) in ORGANIZATIONS.iter().enumerate() {
        for (ci, _) in COUNTRIES.iter().enumerate() {
            if (oi, ci) == (2, 0) {
                continue; // anchor already inserted
            }
            if rng.random_range(0..100) < 55 {
                db.insert(
                    "is_member",
                    Row::new(vec![
                        mem_id.into(),
                        (oi as i64).into(),
                        codes[ci].clone().into(),
                        "member".into(),
                    ]),
                )?;
                mem_id += 1;
            }
        }
    }

    // Languages / spoken.
    for (i, l) in LANGUAGES.iter().enumerate() {
        db.insert("language", Row::new(vec![(i as i64).into(), (*l).into()]))?;
    }
    let mut spoken_id: i64 = 0;
    // Workload anchor: Italian (index 0) is spoken in Spain (index 1).
    db.insert(
        "spoken",
        Row::new(vec![
            spoken_id.into(),
            0.into(),
            codes[1].clone().into(),
            5.0.into(),
        ]),
    )?;
    spoken_id += 1;
    for (ci, _) in COUNTRIES.iter().enumerate() {
        // Primary language aligned by index, plus one random minority.
        for (li, pct) in [
            (ci % LANGUAGES.len(), 80.0),
            (rng.random_range(0..LANGUAGES.len()), 10.0),
        ] {
            db.insert(
                "spoken",
                Row::new(vec![
                    spoken_id.into(),
                    (li as i64).into(),
                    codes[ci].clone().into(),
                    pct.into(),
                ]),
            )?;
            spoken_id += 1;
        }
    }

    // Religions / practiced.
    for (i, r) in RELIGIONS.iter().enumerate() {
        db.insert("religion", Row::new(vec![(i as i64).into(), (*r).into()]))?;
    }
    for (ci, _) in COUNTRIES.iter().enumerate() {
        let prac_id = ci as i64;
        let ri = ci % RELIGIONS.len();
        db.insert(
            "practiced",
            Row::new(vec![
                prac_id.into(),
                (ri as i64).into(),
                codes[ci].clone().into(),
                (50.0 + rng.random_range(0..45) as f64).into(),
            ]),
        )?;
    }

    // Rivers flow through 1-3 countries.
    for (i, r) in RIVERS.iter().enumerate() {
        let len = 200.0 + rng.random_range(0..2800) as f64;
        db.insert(
            "river",
            Row::new(vec![(i as i64).into(), (*r).into(), len.into()]),
        )?;
    }
    let mut flow_id: i64 = 0;
    for (ri, _) in RIVERS.iter().enumerate() {
        let n = 1 + rng.random_range(0..3);
        for _ in 0..n {
            let ci = rng.random_range(0..COUNTRIES.len());
            db.insert(
                "flows_through",
                Row::new(vec![
                    flow_id.into(),
                    (ri as i64).into(),
                    codes[ci].clone().into(),
                ]),
            )?;
            flow_id += 1;
        }
    }
    // The Po flows through Italy, deterministically (workload anchor).
    db.insert(
        "flows_through",
        Row::new(vec![flow_id.into(), 0.into(), codes[0].clone().into()]),
    )?;

    // Mountains.
    for (i, m) in MOUNTAINS.iter().enumerate() {
        let h = 1000.0 + rng.random_range(0..4000) as f64;
        db.insert(
            "mountain",
            Row::new(vec![(i as i64).into(), (*m).into(), h.into()]),
        )?;
    }
    let mut loc_id: i64 = 0;
    for (mi, _) in MOUNTAINS.iter().enumerate() {
        let ci = mi % COUNTRIES.len();
        db.insert(
            "located_in",
            Row::new(vec![
                loc_id.into(),
                (mi as i64).into(),
                codes[ci].clone().into(),
            ]),
        )?;
        loc_id += 1;
    }
    // Etna (index 2) is in Italy (index 0), deterministically.
    db.insert(
        "located_in",
        Row::new(vec![loc_id.into(), 2.into(), codes[0].clone().into()]),
    )?;

    // Borders: ring topology plus a few chords.
    for ci in 0..COUNTRIES.len() {
        let b_id = ci as i64;
        let cj = (ci + 1) % COUNTRIES.len();
        db.insert(
            "borders",
            Row::new(vec![
                b_id.into(),
                codes[ci].clone().into(),
                codes[cj].clone().into(),
                (50.0 + rng.random_range(0..1500) as f64).into(),
            ]),
        )?;
    }

    db.finalize();
    Ok(db)
}

/// The Mondial workload: 10 queries exercising the dense join graph.
pub fn workload() -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery {
            raw: "italy".into(),
            gold: GoldSpec {
                tables: vec!["country".into()],
                joins: vec![],
                contains: vec![("country".into(), "name".into(), "italy".into())],
                terms: vec![GoldTerm::value("country", "name")],
            },
        },
        WorkloadQuery {
            raw: "modena italy".into(),
            gold: GoldSpec {
                tables: vec!["city".into(), "country".into()],
                joins: vec![("city".into(), "country_code".into(), "country".into())],
                contains: vec![
                    ("city".into(), "name".into(), "modena".into()),
                    ("country".into(), "name".into(), "italy".into()),
                ],
                terms: vec![
                    GoldTerm::value("city", "name"),
                    GoldTerm::value("country", "name"),
                ],
            },
        },
        WorkloadQuery {
            raw: "po italy".into(),
            gold: GoldSpec {
                tables: vec!["river".into(), "flows_through".into(), "country".into()],
                joins: vec![
                    ("flows_through".into(), "river_id".into(), "river".into()),
                    (
                        "flows_through".into(),
                        "country_code".into(),
                        "country".into(),
                    ),
                ],
                contains: vec![
                    ("river".into(), "name".into(), "po".into()),
                    ("country".into(), "name".into(), "italy".into()),
                ],
                terms: vec![
                    GoldTerm::value("river", "name"),
                    GoldTerm::value("country", "name"),
                ],
            },
        },
        WorkloadQuery {
            raw: "etna italy".into(),
            gold: GoldSpec {
                tables: vec!["mountain".into(), "located_in".into(), "country".into()],
                joins: vec![
                    ("located_in".into(), "mountain_id".into(), "mountain".into()),
                    ("located_in".into(), "country_code".into(), "country".into()),
                ],
                contains: vec![
                    ("mountain".into(), "name".into(), "etna".into()),
                    ("country".into(), "name".into(), "italy".into()),
                ],
                terms: vec![
                    GoldTerm::value("mountain", "name"),
                    GoldTerm::value("country", "name"),
                ],
            },
        },
        WorkloadQuery {
            raw: "italian spain".into(),
            gold: GoldSpec {
                tables: vec!["language".into(), "spoken".into(), "country".into()],
                joins: vec![
                    ("spoken".into(), "language_id".into(), "language".into()),
                    ("spoken".into(), "country_code".into(), "country".into()),
                ],
                contains: vec![
                    ("language".into(), "name".into(), "italian".into()),
                    ("country".into(), "name".into(), "spain".into()),
                ],
                terms: vec![
                    GoldTerm::value("language", "name"),
                    GoldTerm::value("country", "name"),
                ],
            },
        },
        WorkloadQuery {
            raw: "country population".into(),
            gold: GoldSpec {
                tables: vec!["country".into()],
                joins: vec![],
                contains: vec![],
                terms: vec![
                    GoldTerm::table("country"),
                    GoldTerm::attr("country", "population"),
                ],
            },
        },
        WorkloadQuery {
            raw: "nato italy".into(),
            gold: GoldSpec {
                tables: vec!["organization".into(), "is_member".into(), "country".into()],
                joins: vec![
                    (
                        "is_member".into(),
                        "organization_id".into(),
                        "organization".into(),
                    ),
                    ("is_member".into(), "country_code".into(), "country".into()),
                ],
                contains: vec![
                    ("organization".into(), "abbreviation".into(), "nato".into()),
                    ("country".into(), "name".into(), "italy".into()),
                ],
                terms: vec![
                    GoldTerm::value("organization", "abbreviation"),
                    GoldTerm::value("country", "name"),
                ],
            },
        },
        WorkloadQuery {
            raw: "catholic italy".into(),
            gold: GoldSpec {
                tables: vec!["religion".into(), "practiced".into(), "country".into()],
                joins: vec![
                    ("practiced".into(), "religion_id".into(), "religion".into()),
                    ("practiced".into(), "country_code".into(), "country".into()),
                ],
                contains: vec![
                    ("religion".into(), "name".into(), "catholic".into()),
                    ("country".into(), "name".into(), "italy".into()),
                ],
                terms: vec![
                    GoldTerm::value("religion", "name"),
                    GoldTerm::value("country", "name"),
                ],
            },
        },
        WorkloadQuery {
            raw: "city nation".into(),
            gold: GoldSpec {
                tables: vec!["city".into(), "country".into()],
                joins: vec![("city".into(), "country_code".into(), "country".into())],
                contains: vec![],
                terms: vec![GoldTerm::table("city"), GoldTerm::table("country")],
            },
        },
        WorkloadQuery {
            raw: "river length".into(),
            gold: GoldSpec {
                tables: vec!["river".into()],
                joins: vec![],
                contains: vec![],
                terms: vec![GoldTerm::table("river"), GoldTerm::attr("river", "length")],
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_schema_shape() {
        let c = schema().unwrap();
        assert_eq!(c.table_count(), 15);
        assert_eq!(c.foreign_keys().len(), 17);
    }

    #[test]
    fn small_instance_many_paths() {
        let db = generate(&MondialScale::default()).unwrap();
        // Few rows overall, per the paper's description of Mondial.
        assert!(db.total_rows() < 1_000, "rows = {}", db.total_rows());
        assert!(db.validate_foreign_keys().is_ok());
    }

    #[test]
    fn deterministic() {
        let a = generate(&MondialScale { seed: 3 }).unwrap();
        let b = generate(&MondialScale { seed: 3 }).unwrap();
        assert_eq!(a.total_rows(), b.total_rows());
    }

    #[test]
    fn workload_gold_queries_return_rows() {
        let db = generate(&MondialScale::default()).unwrap();
        for wq in workload() {
            assert!(wq.is_well_formed(), "arity mismatch in {}", wq.raw);
            let stmt = wq.gold.to_statement(db.catalog()).unwrap();
            let rs = relstore::sql::execute(&db, &stmt).unwrap();
            assert!(!rs.is_empty(), "gold SQL of `{}` returns no rows", wq.raw);
        }
    }
}
