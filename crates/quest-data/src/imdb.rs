//! IMDB-shaped dataset: "a simple star schema but ... millions of instances"
//! (paper §4). Seven tables centered on `movie`, scalable row counts, and a
//! fixed set of anchor rows that the workload's gold SQL refers to.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relstore::{Catalog, DataType, Database, Row, StoreError, Value};

use crate::corpus::{COMPANY_STEMS, FIRST_NAMES, GENRES, LAST_NAMES, TITLE_WORDS};
use crate::workload::{GoldSpec, GoldTerm, WorkloadQuery};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct ImdbScale {
    /// Number of generated movies (in addition to the anchors).
    pub movies: usize,
    /// RNG seed (same seed + scale = identical database).
    pub seed: u64,
}

impl Default for ImdbScale {
    fn default() -> Self {
        ImdbScale {
            movies: 1_000,
            seed: 42,
        }
    }
}

impl ImdbScale {
    /// Scale with a given movie count and the default seed.
    pub fn with_movies(movies: usize) -> ImdbScale {
        ImdbScale {
            movies,
            ..Default::default()
        }
    }
}

/// Build the IMDB-shaped schema.
pub fn schema() -> Result<Catalog, StoreError> {
    let mut c = Catalog::new();
    c.define_table("person")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .col_opts("birth_year", DataType::Int, true, true)?
        .finish();
    c.define_table("genre")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .finish();
    c.define_table("company")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .col("country", DataType::Text)?
        .finish();
    c.define_table("movie")?
        .pk("id", DataType::Int)?
        .col("title", DataType::Text)?
        .col_opts("year", DataType::Int, true, true)?
        .col_opts("rating", DataType::Float, true, false)?
        .col_opts("director_id", DataType::Int, true, false)?
        .finish();
    c.define_table("cast_info")?
        .pk("id", DataType::Int)?
        .col_opts("movie_id", DataType::Int, false, false)?
        .col_opts("person_id", DataType::Int, false, false)?
        .col("role", DataType::Text)?
        .finish();
    c.define_table("movie_genre")?
        .pk("id", DataType::Int)?
        .col_opts("movie_id", DataType::Int, false, false)?
        .col_opts("genre_id", DataType::Int, false, false)?
        .finish();
    c.define_table("movie_company")?
        .pk("id", DataType::Int)?
        .col_opts("movie_id", DataType::Int, false, false)?
        .col_opts("company_id", DataType::Int, false, false)?
        .finish();
    c.add_foreign_key("movie", "director_id", "person")?;
    c.add_foreign_key("cast_info", "movie_id", "movie")?;
    c.add_foreign_key("cast_info", "person_id", "person")?;
    c.add_foreign_key("movie_genre", "movie_id", "movie")?;
    c.add_foreign_key("movie_genre", "genre_id", "genre")?;
    c.add_foreign_key("movie_company", "movie_id", "movie")?;
    c.add_foreign_key("movie_company", "company_id", "company")?;
    Ok(c)
}

/// Generate the database at the given scale. Anchor rows (known movies,
/// people, companies referenced by the workload) are always present.
pub fn generate(scale: &ImdbScale) -> Result<Database, StoreError> {
    generate_opts(scale, false)
}

/// Variant for the E8 ablation: the `movie.director_id` column is NULL
/// everywhere, so the direct person↔movie join path is *empty in the
/// instance* while the path through `cast_info` is fully populated. A
/// mutual-information-weighted schema graph learns to avoid the dead FK; a
/// uniformly weighted one prefers it (it is the shorter path).
pub fn generate_sparse_directors(scale: &ImdbScale) -> Result<Database, StoreError> {
    generate_opts(scale, true)
}

fn generate_opts(scale: &ImdbScale, sparse_directors: bool) -> Result<Database, StoreError> {
    let mut db = Database::new(schema()?)?;
    let mut rng = SmallRng::seed_from_u64(scale.seed);

    // Genres: fixed, small.
    for (i, g) in GENRES.iter().enumerate() {
        db.insert("genre", Row::new(vec![(i as i64).into(), (*g).into()]))?;
    }

    // Companies.
    for (i, stem) in COMPANY_STEMS.iter().enumerate() {
        db.insert(
            "company",
            Row::new(vec![
                (i as i64).into(),
                format!("{stem} Pictures").into(),
                "USA".into(),
            ]),
        )?;
    }

    // Anchor people (ids 0..4).
    let anchors_people = [
        "Victor Fleming",
        "Michael Curtiz",
        "Vivien Leigh",
        "Humphrey Bogart",
        "Ingrid Bergman",
    ];
    for (i, name) in anchors_people.iter().enumerate() {
        db.insert(
            "person",
            Row::new(vec![
                (i as i64).into(),
                (*name).into(),
                (1890 + i as i64).into(),
            ]),
        )?;
    }
    // Generated people.
    let n_people = anchors_people.len() + scale.movies.max(1);
    for i in anchors_people.len()..n_people {
        let name = format!(
            "{} {}",
            FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())],
            LAST_NAMES[rng.random_range(0..LAST_NAMES.len())]
        );
        let birth = 1880 + rng.random_range(0..100) as i64;
        db.insert(
            "person",
            Row::new(vec![(i as i64).into(), name.into(), birth.into()]),
        )?;
    }

    // Anchor movies (ids 0..2).
    let anchor_movies: [(&str, i64, f64, i64); 3] = [
        ("Gone with the Wind", 1939, 8.2, 0),
        ("Casablanca", 1942, 8.5, 1),
        ("The Wizard of Oz", 1939, 8.1, 0),
    ];
    for (i, (title, year, rating, director)) in anchor_movies.iter().enumerate() {
        let director_v = if sparse_directors {
            Value::Null
        } else {
            (*director).into()
        };
        db.insert(
            "movie",
            Row::new(vec![
                (i as i64).into(),
                (*title).into(),
                (*year).into(),
                (*rating).into(),
                director_v,
            ]),
        )?;
    }
    // Generated movies.
    let first_gen = anchor_movies.len();
    for i in first_gen..first_gen + scale.movies {
        let title = compose_title(&mut rng);
        let year = 1920 + rng.random_range(0..90) as i64;
        let rating = (rng.random_range(10..100) as f64) / 10.0;
        let director = if sparse_directors {
            Value::Null
        } else {
            Value::Int(rng.random_range(0..n_people) as i64)
        };
        db.insert(
            "movie",
            Row::new(vec![
                (i as i64).into(),
                title.into(),
                year.into(),
                Value::float(rating),
                director,
            ]),
        )?;
    }
    let n_movies = first_gen + scale.movies;

    // Anchor cast: Leigh in Wind, Bogart & Bergman in Casablanca.
    let mut cast_id: i64 = 0;
    for (movie, person, role) in [(0i64, 2i64, "Scarlett"), (1, 3, "Rick"), (1, 4, "Ilsa")] {
        db.insert(
            "cast_info",
            Row::new(vec![
                cast_id.into(),
                movie.into(),
                person.into(),
                role.into(),
            ]),
        )?;
        cast_id += 1;
    }
    // Generated cast: ~3 per movie.
    for m in first_gen..n_movies {
        for _ in 0..3 {
            let p = rng.random_range(0..n_people) as i64;
            let role = FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())];
            db.insert(
                "cast_info",
                Row::new(vec![
                    cast_id.into(),
                    (m as i64).into(),
                    p.into(),
                    role.into(),
                ]),
            )?;
            cast_id += 1;
        }
    }

    // Genres: anchors are Drama (0); generated movies get one random genre.
    let mut mg_id: i64 = 0;
    for (m, g) in [(0i64, 0i64), (1, 0), (2, 11)] {
        db.insert(
            "movie_genre",
            Row::new(vec![mg_id.into(), m.into(), g.into()]),
        )?;
        mg_id += 1;
    }
    for m in first_gen..n_movies {
        let g = rng.random_range(0..GENRES.len()) as i64;
        db.insert(
            "movie_genre",
            Row::new(vec![mg_id.into(), (m as i64).into(), g.into()]),
        )?;
        mg_id += 1;
    }

    // Companies: Wind by Selznick (0); generated movies one random company.
    let mut mc_id: i64 = 0;
    db.insert(
        "movie_company",
        Row::new(vec![mc_id.into(), 0.into(), 0.into()]),
    )?;
    mc_id += 1;
    for m in first_gen..n_movies {
        let comp = rng.random_range(0..COMPANY_STEMS.len()) as i64;
        db.insert(
            "movie_company",
            Row::new(vec![mc_id.into(), (m as i64).into(), comp.into()]),
        )?;
        mc_id += 1;
    }

    db.finalize();
    Ok(db)
}

fn compose_title(rng: &mut SmallRng) -> String {
    let a = TITLE_WORDS[rng.random_range(0..TITLE_WORDS.len())];
    let b = TITLE_WORDS[rng.random_range(0..TITLE_WORDS.len())];
    match rng.random_range(0..3) {
        0 => format!("The {a}"),
        1 => format!("{a} of the {b}"),
        _ => format!("The {a} {b}"),
    }
}

/// The IMDB workload: 12 curated keyword queries with gold SQL, mixing
/// single-table lookups, FK joins, many-to-many joins and schema-term
/// keywords.
pub fn workload() -> Vec<WorkloadQuery> {
    vec![
        // Q1: single value.
        WorkloadQuery {
            raw: "casablanca".into(),
            gold: GoldSpec {
                tables: vec!["movie".into()],
                joins: vec![],
                contains: vec![("movie".into(), "title".into(), "casablanca".into())],
                terms: vec![GoldTerm::value("movie", "title")],
            },
        },
        // Q2: phrase value.
        WorkloadQuery {
            raw: "\"gone with the wind\"".into(),
            gold: GoldSpec {
                tables: vec!["movie".into()],
                joins: vec![],
                contains: vec![("movie".into(), "title".into(), "gone wind".into())],
                terms: vec![GoldTerm::value("movie", "title")],
            },
        },
        // Q3: director join.
        WorkloadQuery {
            raw: "fleming wind".into(),
            gold: GoldSpec {
                tables: vec!["movie".into(), "person".into()],
                joins: vec![("movie".into(), "director_id".into(), "person".into())],
                contains: vec![
                    ("person".into(), "name".into(), "fleming".into()),
                    ("movie".into(), "title".into(), "wind".into()),
                ],
                terms: vec![
                    GoldTerm::value("person", "name"),
                    GoldTerm::value("movie", "title"),
                ],
            },
        },
        // Q4: actor join through cast_info (two hops).
        WorkloadQuery {
            raw: "leigh wind".into(),
            gold: GoldSpec {
                tables: vec!["movie".into(), "person".into(), "cast_info".into()],
                joins: vec![
                    ("cast_info".into(), "movie_id".into(), "movie".into()),
                    ("cast_info".into(), "person_id".into(), "person".into()),
                ],
                contains: vec![
                    ("person".into(), "name".into(), "leigh".into()),
                    ("movie".into(), "title".into(), "wind".into()),
                ],
                terms: vec![
                    GoldTerm::value("person", "name"),
                    GoldTerm::value("movie", "title"),
                ],
            },
        },
        // Q5: schema terms only.
        WorkloadQuery {
            raw: "movie year".into(),
            gold: GoldSpec {
                tables: vec!["movie".into()],
                joins: vec![],
                contains: vec![],
                terms: vec![GoldTerm::table("movie"), GoldTerm::attr("movie", "year")],
            },
        },
        // Q6: genre join with a numeric value.
        WorkloadQuery {
            raw: "drama 1939".into(),
            gold: GoldSpec {
                tables: vec!["movie".into(), "genre".into(), "movie_genre".into()],
                joins: vec![
                    ("movie_genre".into(), "movie_id".into(), "movie".into()),
                    ("movie_genre".into(), "genre_id".into(), "genre".into()),
                ],
                contains: vec![
                    ("genre".into(), "name".into(), "drama".into()),
                    ("movie".into(), "year".into(), "1939".into()),
                ],
                terms: vec![
                    GoldTerm::value("genre", "name"),
                    GoldTerm::value("movie", "year"),
                ],
            },
        },
        // Q7: production company join.
        WorkloadQuery {
            raw: "selznick wind".into(),
            gold: GoldSpec {
                tables: vec!["movie".into(), "company".into(), "movie_company".into()],
                joins: vec![
                    ("movie_company".into(), "movie_id".into(), "movie".into()),
                    (
                        "movie_company".into(),
                        "company_id".into(),
                        "company".into(),
                    ),
                ],
                contains: vec![
                    ("company".into(), "name".into(), "selznick".into()),
                    ("movie".into(), "title".into(), "wind".into()),
                ],
                terms: vec![
                    GoldTerm::value("company", "name"),
                    GoldTerm::value("movie", "title"),
                ],
            },
        },
        // Q8: single person value.
        WorkloadQuery {
            raw: "curtiz".into(),
            gold: GoldSpec {
                tables: vec!["person".into()],
                joins: vec![],
                contains: vec![("person".into(), "name".into(), "curtiz".into())],
                terms: vec![GoldTerm::value("person", "name")],
            },
        },
        // Q9: synonym table term + value ("film" ~ "movie" via ontology).
        WorkloadQuery {
            raw: "film casablanca".into(),
            gold: GoldSpec {
                tables: vec!["movie".into()],
                joins: vec![],
                contains: vec![("movie".into(), "title".into(), "casablanca".into())],
                terms: vec![GoldTerm::table("movie"), GoldTerm::value("movie", "title")],
            },
        },
        // Q10: person value + attribute term crossing a join.
        WorkloadQuery {
            raw: "bergman title".into(),
            gold: GoldSpec {
                tables: vec!["movie".into(), "person".into(), "cast_info".into()],
                joins: vec![
                    ("cast_info".into(), "movie_id".into(), "movie".into()),
                    ("cast_info".into(), "person_id".into(), "person".into()),
                ],
                contains: vec![("person".into(), "name".into(), "bergman".into())],
                terms: vec![
                    GoldTerm::value("person", "name"),
                    GoldTerm::attr("movie", "title"),
                ],
            },
        },
        // Q11: ambiguous year (many movies share it) with a title word.
        WorkloadQuery {
            raw: "oz 1939".into(),
            gold: GoldSpec {
                tables: vec!["movie".into()],
                joins: vec![],
                contains: vec![
                    ("movie".into(), "title".into(), "oz".into()),
                    ("movie".into(), "year".into(), "1939".into()),
                ],
                terms: vec![
                    GoldTerm::value("movie", "title"),
                    GoldTerm::value("movie", "year"),
                ],
            },
        },
        // Q12: director attribute wording.
        WorkloadQuery {
            raw: "casablanca director".into(),
            gold: GoldSpec {
                tables: vec!["movie".into(), "person".into()],
                joins: vec![("movie".into(), "director_id".into(), "person".into())],
                contains: vec![("movie".into(), "title".into(), "casablanca".into())],
                terms: vec![
                    GoldTerm::value("movie", "title"),
                    GoldTerm::attr("movie", "director_id"),
                ],
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = generate(&ImdbScale {
            movies: 50,
            seed: 7,
        })
        .unwrap();
        let b = generate(&ImdbScale {
            movies: 50,
            seed: 7,
        })
        .unwrap();
        let movie = a.catalog().table_id("movie").unwrap();
        assert_eq!(a.row_count(movie), b.row_count(movie));
        let ta = a.table_data(movie);
        let tb = b.table_data(movie);
        for ((_, ra), (_, rb)) in ta.iter().zip(tb.iter()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn scale_controls_size() {
        let small = generate(&ImdbScale {
            movies: 10,
            seed: 1,
        })
        .unwrap();
        let large = generate(&ImdbScale {
            movies: 100,
            seed: 1,
        })
        .unwrap();
        assert!(large.total_rows() > small.total_rows() * 5);
        assert!(small.validate_foreign_keys().is_ok());
    }

    #[test]
    fn anchors_present_at_any_scale() {
        let db = generate(&ImdbScale {
            movies: 5,
            seed: 99,
        })
        .unwrap();
        let title = db.catalog().attr_id("movie", "title").unwrap();
        assert!(db.search_score(title, "casablanca") > 0.0);
        assert!(db.search_score(title, "wind") > 0.0);
        let name = db.catalog().attr_id("person", "name").unwrap();
        assert!(db.search_score(name, "fleming") > 0.0);
    }

    #[test]
    fn workload_is_well_formed_and_gold_is_nonempty() {
        let db = generate(&ImdbScale {
            movies: 20,
            seed: 42,
        })
        .unwrap();
        for wq in workload() {
            assert!(wq.is_well_formed(), "arity mismatch in {}", wq.raw);
            let stmt = wq.gold.to_statement(db.catalog()).unwrap();
            let rs = relstore::sql::execute(&db, &stmt).unwrap();
            assert!(!rs.is_empty(), "gold SQL of `{}` returns no rows", wq.raw);
            wq.gold.to_configuration(db.catalog()).unwrap();
        }
    }

    #[test]
    fn sparse_variant_kills_director_path_only() {
        let db = generate_sparse_directors(&ImdbScale {
            movies: 50,
            seed: 42,
        })
        .unwrap();
        let c = db.catalog();
        // The direct FK join person<-movie is empty...
        let dir_fk = c
            .foreign_keys()
            .iter()
            .find(|fk| c.attribute(fk.from).name == "director_id")
            .copied()
            .unwrap();
        assert!(db.fk_stats(dir_fk).unwrap().is_empty_join());
        // ...but the cast_info joins are populated.
        let cast_fk = c
            .foreign_keys()
            .iter()
            .find(|fk| c.attribute(fk.from).name == "person_id")
            .copied()
            .unwrap();
        assert!(db.fk_stats(cast_fk).unwrap().pairs > 50);
    }

    #[test]
    fn star_schema_shape() {
        let c = schema().unwrap();
        assert_eq!(c.table_count(), 7);
        assert_eq!(c.foreign_keys().len(), 7);
    }
}
