//! A synthetic user-feedback oracle.
//!
//! The paper's feedback-based mode trains on "previous searches validated by
//! the user" through the demo GUI. Offline, this oracle plays the user: for
//! each workload query it emits the gold configuration as positive feedback
//! — except with probability `noise`, when it corrupts one mapping (an
//! imperfect user clicking the wrong explanation). The engine's training
//! path is identical either way.

use quest_core::forward::Configuration;
use quest_core::term::DbTerm;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relstore::Catalog;

use crate::workload::WorkloadQuery;

/// The feedback oracle.
#[derive(Debug, Clone)]
pub struct FeedbackOracle {
    noise: f64,
    rng: SmallRng,
}

impl FeedbackOracle {
    /// Oracle with a corruption probability in [0, 1].
    pub fn new(noise: f64, seed: u64) -> FeedbackOracle {
        FeedbackOracle {
            noise: noise.clamp(0.0, 1.0),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A perfectly reliable oracle.
    pub fn perfect(seed: u64) -> FeedbackOracle {
        FeedbackOracle::new(0.0, seed)
    }

    /// Produce one feedback configuration for a workload query. The bool is
    /// the *truth*: whether the emitted configuration equals the gold one
    /// (callers report it as positive feedback either way — a noisy user
    /// believes their clicks).
    pub fn feedback_for(
        &mut self,
        catalog: &Catalog,
        query: &WorkloadQuery,
    ) -> (Configuration, bool) {
        let gold = query
            .gold
            .to_configuration(catalog)
            .expect("workload gold resolves against its own catalog");
        if self.rng.random_range(0.0..1.0) >= self.noise {
            return (gold, true);
        }
        // Corrupt one mapping: replace a random position with a random
        // other attribute's domain term.
        let mut terms = gold.terms.clone();
        if terms.is_empty() || catalog.attribute_count() == 0 {
            return (gold, true);
        }
        let pos = self.rng.random_range(0..terms.len());
        let attr_n = catalog.attribute_count();
        let pick = relstore::AttrId(self.rng.random_range(0..attr_n) as u32);
        let corrupted = DbTerm::Domain(pick);
        let changed = terms[pos] != corrupted;
        terms[pos] = corrupted;
        (Configuration::new(terms, 1.0), !changed)
    }

    /// Stream `n` rounds of feedback over a workload (cycling through it).
    pub fn stream(
        &mut self,
        catalog: &Catalog,
        workload: &[WorkloadQuery],
        n: usize,
    ) -> Vec<(usize, Configuration, bool)> {
        (0..n)
            .map(|i| {
                let qi = i % workload.len();
                let (cfg, clean) = self.feedback_for(catalog, &workload[qi]);
                (qi, cfg, clean)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb;

    #[test]
    fn perfect_oracle_emits_gold() {
        let db = imdb::generate(&imdb::ImdbScale {
            movies: 10,
            seed: 1,
        })
        .unwrap();
        let wl = imdb::workload();
        let mut o = FeedbackOracle::perfect(7);
        for wq in &wl {
            let (cfg, clean) = o.feedback_for(db.catalog(), wq);
            assert!(clean);
            let gold = wq.gold.to_configuration(db.catalog()).unwrap();
            assert_eq!(cfg.terms, gold.terms);
        }
    }

    #[test]
    fn noisy_oracle_corrupts_sometimes() {
        let db = imdb::generate(&imdb::ImdbScale {
            movies: 10,
            seed: 1,
        })
        .unwrap();
        let wl = imdb::workload();
        let mut o = FeedbackOracle::new(0.5, 11);
        let fb = o.stream(db.catalog(), &wl, 100);
        let dirty = fb.iter().filter(|(_, _, clean)| !clean).count();
        assert!(dirty > 20, "expected corruption near 50%, got {dirty}/100");
        assert!(dirty < 80);
    }

    #[test]
    fn stream_cycles_queries() {
        let db = imdb::generate(&imdb::ImdbScale {
            movies: 10,
            seed: 1,
        })
        .unwrap();
        let wl = imdb::workload();
        let mut o = FeedbackOracle::perfect(3);
        let fb = o.stream(db.catalog(), &wl, wl.len() * 2);
        assert_eq!(fb.len(), wl.len() * 2);
        assert_eq!(fb[0].0, fb[wl.len()].0);
    }
}
