//! Keyword workloads with gold-standard SQL.
//!
//! Every dataset ships a workload: keyword queries paired with the SQL the
//! user *meant* (a [`GoldSpec`]) and the keyword→term mapping behind it
//! (the gold configuration, used by the feedback oracle). Specs are written
//! against table/attribute *names* and resolved against a catalog, so they
//! survive generator changes that do not rename schema elements.

use quest_core::forward::Configuration;
use quest_core::term::DbTerm;
use quest_core::KeywordQuery;
use relstore::index::normalize_keyword;
use relstore::sql::{JoinCondition, Predicate, Projection, SelectStatement};
use relstore::{Catalog, StoreError};

/// What one keyword is supposed to mean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldTerm {
    /// The keyword is a value of `table.attr`.
    Value(String, String),
    /// The keyword names the attribute `table.attr`.
    Attr(String, String),
    /// The keyword names the table.
    Table(String),
}

impl GoldTerm {
    /// Shorthand constructor for a value term.
    pub fn value(table: &str, attr: &str) -> GoldTerm {
        GoldTerm::Value(table.into(), attr.into())
    }

    /// Shorthand constructor for an attribute term.
    pub fn attr(table: &str, attr: &str) -> GoldTerm {
        GoldTerm::Attr(table.into(), attr.into())
    }

    /// Shorthand constructor for a table term.
    pub fn table(table: &str) -> GoldTerm {
        GoldTerm::Table(table.into())
    }

    /// Resolve to a [`DbTerm`].
    pub fn resolve(&self, catalog: &Catalog) -> Result<DbTerm, StoreError> {
        Ok(match self {
            GoldTerm::Value(t, a) => DbTerm::Domain(catalog.attr_id(t, a)?),
            GoldTerm::Attr(t, a) => DbTerm::Attribute(catalog.attr_id(t, a)?),
            GoldTerm::Table(t) => DbTerm::Table(catalog.table_id(t)?),
        })
    }
}

/// The intended SQL of one workload query, by names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GoldSpec {
    /// FROM tables.
    pub tables: Vec<String>,
    /// Joins as `(table, fk_attr, referenced_table)` — the referenced side
    /// is that table's primary key.
    pub joins: Vec<(String, String, String)>,
    /// Contains predicates as `(table, attr, raw keyword)`.
    pub contains: Vec<(String, String, String)>,
    /// Gold keyword→term mapping, aligned with the parsed keywords.
    pub terms: Vec<GoldTerm>,
}

impl GoldSpec {
    /// Resolve the intended SQL against a catalog.
    pub fn to_statement(&self, catalog: &Catalog) -> Result<SelectStatement, StoreError> {
        let from = self
            .tables
            .iter()
            .map(|t| catalog.table_id(t))
            .collect::<Result<Vec<_>, _>>()?;
        let joins = self
            .joins
            .iter()
            .map(|(t, a, to)| {
                let left = catalog.attr_id(t, a)?;
                let to_tid = catalog.table_id(to)?;
                let right = catalog.single_pk(to_tid).ok_or_else(|| {
                    StoreError::InvalidSchema(format!("{to} lacks a single-attribute pk"))
                })?;
                Ok(JoinCondition { left, right })
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        let predicates = self
            .contains
            .iter()
            .map(|(t, a, kw)| {
                Ok(Predicate::Contains {
                    attr: catalog.attr_id(t, a)?,
                    keyword: normalize_keyword(kw).unwrap_or_else(|| kw.clone()),
                })
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        Ok(SelectStatement {
            projection: Projection::Star,
            from,
            joins,
            predicates,
            distinct: true,
            limit: None,
        })
    }

    /// Resolve the gold configuration (score 1.0) against a catalog.
    pub fn to_configuration(&self, catalog: &Catalog) -> Result<Configuration, StoreError> {
        let terms = self
            .terms
            .iter()
            .map(|g| g.resolve(catalog))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Configuration::new(terms, 1.0))
    }
}

/// One workload entry: the raw keyword query plus its gold spec.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The keyword query as a user would type it.
    pub raw: String,
    /// What the user meant.
    pub gold: GoldSpec,
}

impl WorkloadQuery {
    /// Parse the raw query (must be valid; workloads are curated).
    pub fn parse(&self) -> KeywordQuery {
        KeywordQuery::parse(&self.raw).expect("workload queries are curated to parse")
    }

    /// Check the gold term list matches the parsed keyword arity.
    pub fn is_well_formed(&self) -> bool {
        match KeywordQuery::parse(&self.raw) {
            Ok(q) => q.len() == self.gold.terms.len(),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define_table("person")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("name", DataType::Text)
            .unwrap()
            .finish();
        c.define_table("movie")
            .unwrap()
            .pk("id", DataType::Int)
            .unwrap()
            .col("title", DataType::Text)
            .unwrap()
            .col_opts("director_id", DataType::Int, true, false)
            .unwrap()
            .finish();
        c.add_foreign_key("movie", "director_id", "person").unwrap();
        c
    }

    fn spec() -> GoldSpec {
        GoldSpec {
            tables: vec!["movie".into(), "person".into()],
            joins: vec![("movie".into(), "director_id".into(), "person".into())],
            contains: vec![
                ("movie".into(), "title".into(), "Wind".into()),
                ("person".into(), "name".into(), "Fleming".into()),
            ],
            terms: vec![
                GoldTerm::value("movie", "title"),
                GoldTerm::value("person", "name"),
            ],
        }
    }

    #[test]
    fn spec_resolves_to_statement() {
        let c = catalog();
        let stmt = spec().to_statement(&c).unwrap();
        assert_eq!(stmt.from.len(), 2);
        assert_eq!(stmt.joins.len(), 1);
        assert_eq!(stmt.predicates.len(), 2);
        // Keywords are normalized in predicates.
        match &stmt.predicates[1] {
            Predicate::Contains { keyword, .. } => assert_eq!(keyword, "flem"),
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn spec_resolves_to_configuration() {
        let c = catalog();
        let cfg = spec().to_configuration(&c).unwrap();
        assert_eq!(cfg.terms.len(), 2);
        assert!(matches!(cfg.terms[0], DbTerm::Domain(_)));
    }

    #[test]
    fn unknown_names_error() {
        let c = catalog();
        let mut s = spec();
        s.tables.push("ghost".into());
        assert!(s.to_statement(&c).is_err());
    }

    #[test]
    fn well_formedness_checks_arity() {
        let wq = WorkloadQuery {
            raw: "wind fleming".into(),
            gold: spec(),
        };
        assert!(wq.is_well_formed());
        let wq = WorkloadQuery {
            raw: "wind".into(),
            gold: spec(),
        };
        assert!(!wq.is_well_formed());
        assert_eq!(
            WorkloadQuery {
                raw: "wind fleming".into(),
                gold: spec()
            }
            .parse()
            .len(),
            2
        );
    }
}
