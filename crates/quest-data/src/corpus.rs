//! Embedded vocabulary corpora for deterministic, realistic-looking data.
//!
//! The generators compose names from these lists with a seeded RNG, so every
//! run of a generator with the same seed and scale produces the identical
//! database — a requirement for reproducible workloads with gold SQL.

/// Common given names.
pub const FIRST_NAMES: &[&str] = &[
    "Victor",
    "Michael",
    "Vivien",
    "Clark",
    "Ingrid",
    "Humphrey",
    "Orson",
    "Rita",
    "Audrey",
    "Gregory",
    "Marlon",
    "Grace",
    "James",
    "Katharine",
    "Spencer",
    "Bette",
    "Cary",
    "Joan",
    "Henry",
    "Barbara",
    "Marcello",
    "Sophia",
    "Akira",
    "Toshiro",
    "Setsuko",
    "Federico",
    "Giulietta",
    "Alfred",
    "Grete",
    "Buster",
    "Charles",
    "Mary",
    "Lillian",
    "Douglas",
    "Gloria",
    "Rudolph",
    "Norma",
    "Ramon",
    "Dolores",
    "John",
    "Maureen",
    "Walter",
    "Olivia",
    "Leslie",
    "Hattie",
    "Thomas",
    "Evelyn",
    "Sidney",
    "Dorothy",
    "Paul",
    "Shirley",
];

/// Common family names.
pub const LAST_NAMES: &[&str] = &[
    "Fleming",
    "Curtiz",
    "Leigh",
    "Gable",
    "Bergman",
    "Bogart",
    "Welles",
    "Hayworth",
    "Hepburn",
    "Peck",
    "Brando",
    "Kelly",
    "Stewart",
    "Tracy",
    "Davis",
    "Grant",
    "Crawford",
    "Fonda",
    "Stanwyck",
    "Mastroianni",
    "Loren",
    "Kurosawa",
    "Mifune",
    "Hara",
    "Fellini",
    "Masina",
    "Hitchcock",
    "Garbo",
    "Keaton",
    "Chaplin",
    "Pickford",
    "Gish",
    "Fairbanks",
    "Swanson",
    "Valentino",
    "Shearer",
    "Novarro",
    "Delrio",
    "Wayne",
    "Ohara",
    "Huston",
    "Dehavilland",
    "Howard",
    "Mcdaniel",
    "Mitchell",
    "Keyes",
    "Poitier",
    "Dandridge",
    "Newman",
    "Maclaine",
];

/// Words used to compose movie titles.
pub const TITLE_WORDS: &[&str] = &[
    "Wind",
    "Storm",
    "Casablanca",
    "Falcon",
    "Sunset",
    "Boulevard",
    "Kane",
    "Vertigo",
    "Shadow",
    "Night",
    "River",
    "Bridge",
    "Garden",
    "Station",
    "Letter",
    "Stranger",
    "Paradise",
    "Empire",
    "Crown",
    "Harvest",
    "Silence",
    "Mirror",
    "Voyage",
    "Horizon",
    "Lantern",
    "Carnival",
    "Winter",
    "Summer",
    "Autumn",
    "Spring",
    "Phantom",
    "Cathedral",
    "Fortress",
    "Meadow",
    "Tempest",
    "Eclipse",
    "Aurora",
    "Monsoon",
    "Glacier",
    "Harbor",
    "Lighthouse",
    "Orchard",
    "Prairie",
    "Canyon",
    "Delta",
    "Savanna",
    "Tundra",
    "Lagoon",
    "Obsidian",
    "Velvet",
];

/// Movie genres.
pub const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Thriller",
    "Romance",
    "Western",
    "Noir",
    "Adventure",
    "Musical",
    "Mystery",
    "War",
    "Biography",
    "Fantasy",
];

/// Production company name stems.
pub const COMPANY_STEMS: &[&str] = &[
    "Selznick",
    "Metro",
    "Paramount",
    "Universal",
    "Columbia",
    "Warner",
    "Gaumont",
    "Pathe",
    "Toho",
    "Cinecitta",
    "Ealing",
    "Rank",
    "Mosfilm",
    "Nordisk",
    "Babelsberg",
    "Lumiere",
];

/// Research-paper title words (DBLP-shaped data).
pub const PAPER_WORDS: &[&str] = &[
    "Keyword",
    "Search",
    "Relational",
    "Databases",
    "Semantic",
    "Probabilistic",
    "Markov",
    "Steiner",
    "Trees",
    "Evidence",
    "Ranking",
    "Queries",
    "Indexing",
    "Optimization",
    "Schema",
    "Matching",
    "Integration",
    "Streams",
    "Graphs",
    "Mining",
    "Learning",
    "Clustering",
    "Sampling",
    "Joins",
    "Views",
    "Transactions",
    "Recovery",
    "Concurrency",
    "Distributed",
    "Parallel",
    "Adaptive",
    "Approximate",
    "Skyline",
    "Provenance",
    "Crowdsourcing",
    "Uncertain",
    "Temporal",
    "Spatial",
    "Workflows",
    "Summarization",
];

/// Publication venues.
pub const VENUES: &[&str] = &[
    "VLDB", "SIGMOD", "ICDE", "EDBT", "CIKM", "KDD", "WWW", "ER", "DASFAA", "SSDBM", "TODS",
    "TKDE", "PVLDB", "DKE",
];

/// University name stems (author affiliations).
pub const UNIVERSITIES: &[&str] = &[
    "Modena",
    "Zaragoza",
    "Trento",
    "Bologna",
    "Madrid",
    "Athens",
    "Toronto",
    "Waterloo",
    "Stanford",
    "Berkeley",
    "Tsinghua",
    "Melbourne",
    "Edinburgh",
    "Zurich",
    "Copenhagen",
    "Singapore",
];

/// Country names (Mondial-shaped data).
pub const COUNTRIES: &[&str] = &[
    "Italy",
    "Spain",
    "France",
    "Germany",
    "Austria",
    "Greece",
    "Portugal",
    "Ireland",
    "Norway",
    "Sweden",
    "Finland",
    "Poland",
    "Hungary",
    "Romania",
    "Bulgaria",
    "Croatia",
    "Slovenia",
    "Estonia",
    "Latvia",
    "Lithuania",
    "Belgium",
    "Netherlands",
    "Denmark",
    "Switzerland",
    "Albania",
    "Iceland",
];

/// City names.
pub const CITIES: &[&str] = &[
    "Modena",
    "Zaragoza",
    "Trento",
    "Riva",
    "Bologna",
    "Turin",
    "Seville",
    "Valencia",
    "Lyon",
    "Marseille",
    "Hamburg",
    "Munich",
    "Salzburg",
    "Patras",
    "Porto",
    "Cork",
    "Bergen",
    "Uppsala",
    "Tampere",
    "Krakow",
    "Debrecen",
    "Cluj",
    "Plovdiv",
    "Split",
    "Maribor",
    "Tartu",
    "Riga",
    "Kaunas",
    "Ghent",
    "Rotterdam",
    "Aarhus",
    "Geneva",
    "Vlore",
    "Akureyri",
    "Florence",
    "Granada",
    "Toulouse",
    "Dresden",
    "Innsbruck",
    "Thessaloniki",
];

/// River names.
pub const RIVERS: &[&str] = &[
    "Po", "Ebro", "Rhone", "Rhine", "Danube", "Tagus", "Shannon", "Glomma", "Torne", "Vistula",
    "Tisza", "Olt", "Maritsa", "Sava", "Drava", "Daugava", "Nemunas", "Meuse", "Aare", "Drin",
];

/// Mountain names.
pub const MOUNTAINS: &[&str] = &[
    "Blanc",
    "Matterhorn",
    "Etna",
    "Olympus",
    "Teide",
    "Mulhacen",
    "Zugspitze",
    "Grossglockner",
    "Galdhopiggen",
    "Kebnekaise",
    "Rysy",
    "Musala",
    "Triglav",
    "Korab",
    "Hvannadalshnukur",
    "Carrantuohill",
];

/// Language names.
pub const LANGUAGES: &[&str] = &[
    "Italian",
    "Spanish",
    "French",
    "German",
    "Greek",
    "Portuguese",
    "Irish",
    "Norwegian",
    "Swedish",
    "Finnish",
    "Polish",
    "Hungarian",
    "Romanian",
    "Bulgarian",
    "Croatian",
    "Slovene",
    "Estonian",
    "Latvian",
    "Lithuanian",
    "Dutch",
    "Danish",
    "Albanian",
    "Icelandic",
    "Catalan",
];

/// Religion names.
pub const RELIGIONS: &[&str] = &[
    "Catholic",
    "Protestant",
    "Orthodox",
    "Muslim",
    "Jewish",
    "Buddhist",
    "Hindu",
    "Anglican",
];

/// International organizations: (name, abbreviation).
pub const ORGANIZATIONS: &[(&str, &str)] = &[
    ("European Union", "EU"),
    ("United Nations", "UN"),
    ("North Atlantic Treaty Organization", "NATO"),
    ("World Trade Organization", "WTO"),
    ("Council of Europe", "COE"),
    ("Organization for Security and Cooperation", "OSCE"),
    ("European Free Trade Association", "EFTA"),
    ("World Health Organization", "WHO"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_nonempty_and_distinct() {
        for list in [
            FIRST_NAMES,
            LAST_NAMES,
            TITLE_WORDS,
            GENRES,
            COMPANY_STEMS,
            PAPER_WORDS,
            VENUES,
            UNIVERSITIES,
            COUNTRIES,
            CITIES,
            RIVERS,
            MOUNTAINS,
            LANGUAGES,
            RELIGIONS,
        ] {
            assert!(list.len() >= 8);
            let mut sorted: Vec<_> = list.to_vec();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), list.len(), "duplicate entries in a corpus");
        }
        assert!(ORGANIZATIONS.len() >= 4);
    }

    #[test]
    fn corpus_entries_are_single_words_where_required() {
        // Title words compose titles; multi-word entries would break token
        // accounting in the workloads.
        for w in TITLE_WORDS {
            assert!(!w.contains(' '), "{w}");
        }
        for w in COUNTRIES {
            assert!(!w.contains(' '), "{w}");
        }
    }
}
