//! # quest-data — datasets, workloads and oracles for the QUEST demo
//!
//! Deterministic generators reproducing the *shape* of the three databases
//! the paper demonstrates on (§4):
//!
//! * [`imdb`] — "a simple star schema but ... millions of instances":
//!   7 tables around `movie`, scalable row counts;
//! * [`mondial`] — "few instances but a very complex schema where tables are
//!   connected through many paths": 15 tables of geographic facts;
//! * [`dblp`] — "many instances ... in a non-trivial schema": authors,
//!   publications, venues, authorship and citations.
//!
//! Each dataset ships a curated keyword [`workload`] with
//! gold-standard SQL and gold keyword→term mappings, plus a synthetic
//! [`oracle::FeedbackOracle`] that replays user validations (optionally
//! noisy) into the engine's training path.

#![warn(missing_docs)]

pub mod corpus;
pub mod dblp;
pub mod imdb;
pub mod mondial;
pub mod oracle;
pub mod workload;

pub use oracle::FeedbackOracle;
pub use workload::{GoldSpec, GoldTerm, WorkloadQuery};
