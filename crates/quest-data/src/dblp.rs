//! DBLP-shaped dataset: "many instances ... in a non-trivial schema"
//! (paper §4: ~1M people, ~800k papers, >2M authorship rows in the real
//! DBLP). Five tables — authors, venues, publications, the many-to-many
//! `authorship` relation, and citations — scalable to large row counts.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relstore::{Catalog, DataType, Database, Row, StoreError};

use crate::corpus::{FIRST_NAMES, LAST_NAMES, PAPER_WORDS, UNIVERSITIES, VENUES};
use crate::workload::{GoldSpec, GoldTerm, WorkloadQuery};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct DblpScale {
    /// Number of generated publications (anchors added on top).
    pub publications: usize,
    /// Authors per publication (average; the real ratio is ~2.5).
    pub authors_per_paper: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpScale {
    fn default() -> Self {
        DblpScale {
            publications: 1_000,
            authors_per_paper: 3,
            seed: 42,
        }
    }
}

impl DblpScale {
    /// Scale with a publication count and default ratios.
    pub fn with_publications(publications: usize) -> DblpScale {
        DblpScale {
            publications,
            ..Default::default()
        }
    }
}

/// Build the DBLP-shaped schema.
pub fn schema() -> Result<Catalog, StoreError> {
    let mut c = Catalog::new();
    c.define_table("author")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .col("affiliation", DataType::Text)?
        .finish();
    c.define_table("venue")?
        .pk("id", DataType::Int)?
        .col("name", DataType::Text)?
        .col("kind", DataType::Text)?
        .finish();
    c.define_table("publication")?
        .pk("id", DataType::Int)?
        .col("title", DataType::Text)?
        .col_opts("year", DataType::Int, true, true)?
        .col_opts("venue_id", DataType::Int, true, false)?
        .finish();
    c.define_table("authorship")?
        .pk("id", DataType::Int)?
        .col_opts("author_id", DataType::Int, false, false)?
        .col_opts("publication_id", DataType::Int, false, false)?
        .col_opts("position", DataType::Int, true, false)?
        .finish();
    c.define_table("citation")?
        .pk("id", DataType::Int)?
        .col_opts("citing_id", DataType::Int, false, false)?
        .col_opts("cited_id", DataType::Int, false, false)?
        .finish();
    c.add_foreign_key("publication", "venue_id", "venue")?;
    c.add_foreign_key("authorship", "author_id", "author")?;
    c.add_foreign_key("authorship", "publication_id", "publication")?;
    c.add_foreign_key("citation", "citing_id", "publication")?;
    c.add_foreign_key("citation", "cited_id", "publication")?;
    Ok(c)
}

/// Generate the database at the given scale.
pub fn generate(scale: &DblpScale) -> Result<Database, StoreError> {
    let mut db = Database::new(schema()?)?;
    let mut rng = SmallRng::seed_from_u64(scale.seed);

    // Venues: fixed.
    for (i, v) in VENUES.iter().enumerate() {
        let kind = if i % 3 == 0 { "journal" } else { "conference" };
        db.insert(
            "venue",
            Row::new(vec![(i as i64).into(), (*v).into(), kind.into()]),
        )?;
    }

    // Anchor authors.
    let anchor_authors = [
        ("Sonia Bergamaschi", "Modena"),
        ("Francesco Guerra", "Modena"),
        ("Yannis Velegrakis", "Trento"),
        ("Raquel Trillo", "Zaragoza"),
    ];
    for (i, (name, aff)) in anchor_authors.iter().enumerate() {
        db.insert(
            "author",
            Row::new(vec![
                (i as i64).into(),
                (*name).into(),
                format!("University of {aff}").into(),
            ]),
        )?;
    }
    let n_authors =
        anchor_authors.len() + (scale.publications * scale.authors_per_paper / 2).max(1);
    for i in anchor_authors.len()..n_authors {
        let name = format!(
            "{} {}",
            FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())],
            LAST_NAMES[rng.random_range(0..LAST_NAMES.len())]
        );
        let aff = format!(
            "University of {}",
            UNIVERSITIES[rng.random_range(0..UNIVERSITIES.len())]
        );
        db.insert(
            "author",
            Row::new(vec![(i as i64).into(), name.into(), aff.into()]),
        )?;
    }

    // Anchor publication: the QUEST paper itself, at VLDB (index 0).
    db.insert(
        "publication",
        Row::new(vec![
            0.into(),
            "Keyword Search over Relational Databases".into(),
            2013.into(),
            0.into(),
        ]),
    )?;
    let first_gen = 1usize;
    for i in first_gen..first_gen + scale.publications {
        let title = compose_title(&mut rng);
        let year = 1995 + rng.random_range(0..20) as i64;
        let venue = rng.random_range(0..VENUES.len()) as i64;
        db.insert(
            "publication",
            Row::new(vec![
                (i as i64).into(),
                title.into(),
                year.into(),
                venue.into(),
            ]),
        )?;
    }
    let n_pubs = first_gen + scale.publications;

    // Authorship: anchors author the anchor paper; generated papers get
    // 1..=2*avg random authors.
    let mut as_id: i64 = 0;
    for (pos, a) in [0i64, 1, 2].iter().enumerate() {
        db.insert(
            "authorship",
            Row::new(vec![
                as_id.into(),
                (*a).into(),
                0.into(),
                (pos as i64).into(),
            ]),
        )?;
        as_id += 1;
    }
    for p in first_gen..n_pubs {
        let n = 1 + rng.random_range(0..scale.authors_per_paper * 2);
        let mut used: Vec<i64> = Vec::new();
        for pos in 0..n {
            let a = rng.random_range(0..n_authors) as i64;
            if used.contains(&a) {
                continue;
            }
            used.push(a);
            db.insert(
                "authorship",
                Row::new(vec![
                    as_id.into(),
                    a.into(),
                    (p as i64).into(),
                    (pos as i64).into(),
                ]),
            )?;
            as_id += 1;
        }
    }

    // Citations: each generated paper cites up to 3 earlier papers.
    let mut cit_id: i64 = 0;
    for p in first_gen..n_pubs {
        let n = rng.random_range(0..4);
        for _ in 0..n {
            let cited = rng.random_range(0..p) as i64;
            db.insert(
                "citation",
                Row::new(vec![cit_id.into(), (p as i64).into(), cited.into()]),
            )?;
            cit_id += 1;
        }
    }
    db.finalize();
    Ok(db)
}

fn compose_title(rng: &mut SmallRng) -> String {
    let a = PAPER_WORDS[rng.random_range(0..PAPER_WORDS.len())];
    let b = PAPER_WORDS[rng.random_range(0..PAPER_WORDS.len())];
    let c = PAPER_WORDS[rng.random_range(0..PAPER_WORDS.len())];
    match rng.random_range(0..3) {
        0 => format!("{a} {b} in {c}"),
        1 => format!("Efficient {a} {b}"),
        _ => format!("On {a} for {b} {c}"),
    }
}

/// The DBLP workload: 10 queries over authors, venues and citations.
pub fn workload() -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery {
            raw: "bergamaschi".into(),
            gold: GoldSpec {
                tables: vec!["author".into()],
                joins: vec![],
                contains: vec![("author".into(), "name".into(), "bergamaschi".into())],
                terms: vec![GoldTerm::value("author", "name")],
            },
        },
        WorkloadQuery {
            raw: "bergamaschi keyword".into(),
            gold: GoldSpec {
                tables: vec!["author".into(), "authorship".into(), "publication".into()],
                joins: vec![
                    ("authorship".into(), "author_id".into(), "author".into()),
                    (
                        "authorship".into(),
                        "publication_id".into(),
                        "publication".into(),
                    ),
                ],
                contains: vec![
                    ("author".into(), "name".into(), "bergamaschi".into()),
                    ("publication".into(), "title".into(), "keyword".into()),
                ],
                terms: vec![
                    GoldTerm::value("author", "name"),
                    GoldTerm::value("publication", "title"),
                ],
            },
        },
        WorkloadQuery {
            raw: "vldb 2013".into(),
            gold: GoldSpec {
                tables: vec!["venue".into(), "publication".into()],
                joins: vec![("publication".into(), "venue_id".into(), "venue".into())],
                contains: vec![
                    ("venue".into(), "name".into(), "vldb".into()),
                    ("publication".into(), "year".into(), "2013".into()),
                ],
                terms: vec![
                    GoldTerm::value("venue", "name"),
                    GoldTerm::value("publication", "year"),
                ],
            },
        },
        WorkloadQuery {
            raw: "guerra modena".into(),
            gold: GoldSpec {
                tables: vec!["author".into()],
                joins: vec![],
                contains: vec![
                    ("author".into(), "name".into(), "guerra".into()),
                    ("author".into(), "affiliation".into(), "modena".into()),
                ],
                terms: vec![
                    GoldTerm::value("author", "name"),
                    GoldTerm::value("author", "affiliation"),
                ],
            },
        },
        WorkloadQuery {
            raw: "author paper".into(),
            gold: GoldSpec {
                tables: vec!["author".into(), "authorship".into(), "publication".into()],
                joins: vec![
                    ("authorship".into(), "author_id".into(), "author".into()),
                    (
                        "authorship".into(),
                        "publication_id".into(),
                        "publication".into(),
                    ),
                ],
                contains: vec![],
                terms: vec![GoldTerm::table("author"), GoldTerm::table("publication")],
            },
        },
        WorkloadQuery {
            raw: "velegrakis vldb".into(),
            gold: GoldSpec {
                tables: vec![
                    "author".into(),
                    "authorship".into(),
                    "publication".into(),
                    "venue".into(),
                ],
                joins: vec![
                    ("authorship".into(), "author_id".into(), "author".into()),
                    (
                        "authorship".into(),
                        "publication_id".into(),
                        "publication".into(),
                    ),
                    ("publication".into(), "venue_id".into(), "venue".into()),
                ],
                contains: vec![
                    ("author".into(), "name".into(), "velegrakis".into()),
                    ("venue".into(), "name".into(), "vldb".into()),
                ],
                terms: vec![
                    GoldTerm::value("author", "name"),
                    GoldTerm::value("venue", "name"),
                ],
            },
        },
        WorkloadQuery {
            raw: "publication year".into(),
            gold: GoldSpec {
                tables: vec!["publication".into()],
                joins: vec![],
                contains: vec![],
                terms: vec![
                    GoldTerm::table("publication"),
                    GoldTerm::attr("publication", "year"),
                ],
            },
        },
        WorkloadQuery {
            raw: "trillo zaragoza".into(),
            gold: GoldSpec {
                tables: vec!["author".into()],
                joins: vec![],
                contains: vec![
                    ("author".into(), "name".into(), "trillo".into()),
                    ("author".into(), "affiliation".into(), "zaragoza".into()),
                ],
                terms: vec![
                    GoldTerm::value("author", "name"),
                    GoldTerm::value("author", "affiliation"),
                ],
            },
        },
        WorkloadQuery {
            raw: "journal steiner".into(),
            gold: GoldSpec {
                tables: vec!["venue".into(), "publication".into()],
                joins: vec![("publication".into(), "venue_id".into(), "venue".into())],
                contains: vec![
                    ("venue".into(), "kind".into(), "journal".into()),
                    ("publication".into(), "title".into(), "steiner".into()),
                ],
                terms: vec![
                    GoldTerm::value("venue", "kind"),
                    GoldTerm::value("publication", "title"),
                ],
            },
        },
        WorkloadQuery {
            raw: "conference 2005".into(),
            gold: GoldSpec {
                tables: vec!["venue".into(), "publication".into()],
                joins: vec![("publication".into(), "venue_id".into(), "venue".into())],
                contains: vec![
                    ("venue".into(), "kind".into(), "conference".into()),
                    ("publication".into(), "year".into(), "2005".into()),
                ],
                terms: vec![
                    GoldTerm::value("venue", "kind"),
                    GoldTerm::value("publication", "year"),
                ],
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let c = schema().unwrap();
        assert_eq!(c.table_count(), 5);
        assert_eq!(c.foreign_keys().len(), 5);
    }

    #[test]
    fn generator_scales_and_validates() {
        let db = generate(&DblpScale {
            publications: 100,
            authors_per_paper: 3,
            seed: 1,
        })
        .unwrap();
        assert!(db.validate_foreign_keys().is_ok());
        let pubs = db.catalog().table_id("publication").unwrap();
        assert_eq!(db.row_count(pubs), 101);
        let auth = db.catalog().table_id("authorship").unwrap();
        assert!(db.row_count(auth) > 100, "m:n relation should dominate");
    }

    #[test]
    fn deterministic() {
        let s = DblpScale {
            publications: 30,
            authors_per_paper: 2,
            seed: 9,
        };
        let a = generate(&s).unwrap();
        let b = generate(&s).unwrap();
        assert_eq!(a.total_rows(), b.total_rows());
    }

    #[test]
    fn workload_gold_queries_return_rows() {
        let db = generate(&DblpScale {
            publications: 300,
            authors_per_paper: 3,
            seed: 42,
        })
        .unwrap();
        for wq in workload() {
            assert!(wq.is_well_formed(), "arity mismatch in {}", wq.raw);
            let stmt = wq.gold.to_statement(db.catalog()).unwrap();
            let rs = relstore::sql::execute(&db, &stmt).unwrap();
            assert!(!rs.is_empty(), "gold SQL of `{}` returns no rows", wq.raw);
        }
    }
}
